// EdgeServer integration tests: routing stability, tenant isolation across data-plane shards,
// per-tenant audit verifiability, per-shard backpressure containment, quota admission, and the
// Runner drain/shutdown ordering the server's shutdown path depends on.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "src/control/benchmarks.h"
#include "src/net/generator.h"
#include "src/server/edge_server.h"
#include "src/server/shard_router.h"
#include "tests/testing/testing.h"

namespace sbt {
namespace {

using testing::RegenerateEvents;

// One emulated source: a generator feeding its own channel from its own thread.
struct TestSource {
  TenantId tenant = 0;
  uint32_t id = 0;
  uint16_t pipeline_stream = 0;
  std::unique_ptr<FrameChannel> channel;
  std::unique_ptr<Generator> generator;
  std::thread thread;
};

GeneratorConfig SourceGenConfig(const TenantSpec& spec, WorkloadKind kind,
                                uint32_t events_per_window = 5000, uint32_t num_windows = 3,
                                uint32_t watermark_lag = 0, uint64_t seed = 42) {
  GeneratorConfig cfg;
  cfg.workload.kind = kind;
  cfg.workload.events_per_window = events_per_window;
  cfg.workload.window_ms = 1000;
  cfg.workload.seed = seed;
  cfg.batch_events = 1000;
  cfg.num_windows = num_windows;
  cfg.watermark_lag_windows = watermark_lag;
  cfg.encrypt = spec.encrypted_ingress;
  cfg.key = spec.ingress_key;
  cfg.nonce = spec.ingress_nonce;
  return cfg;
}

std::unique_ptr<TestSource> MakeSource(TenantId tenant, uint32_t id, const GeneratorConfig& cfg,
                                       uint16_t pipeline_stream = 0) {
  auto src = std::make_unique<TestSource>();
  src->tenant = tenant;
  src->id = id;
  src->pipeline_stream = pipeline_stream;
  src->channel = std::make_unique<FrameChannel>(8);
  src->generator = std::make_unique<Generator>(cfg);
  return src;
}

void StartSources(std::vector<std::unique_ptr<TestSource>>& sources) {
  for (auto& src : sources) {
    src->thread = std::thread([s = src.get()] { s->generator->RunInto(s->channel.get()); });
  }
}

void JoinSources(std::vector<std::unique_ptr<TestSource>>& sources) {
  for (auto& src : sources) {
    src->thread.join();
  }
}

std::vector<uint8_t> DecryptTenantBlob(const TenantSpec& spec, const EgressBlob& blob) {
  Aes128Ctr cipher(spec.egress_key, std::span<const uint8_t>(spec.egress_nonce.data(), 12));
  std::vector<uint8_t> plain = blob.ciphertext;
  cipher.Crypt(std::span<uint8_t>(plain.data(), plain.size()), blob.ctr_offset);
  return plain;
}

TEST(ShardRouterTest, RoutingIsStableAndSpreads) {
  const ShardRouter router(4);
  std::vector<size_t> load(4, 0);
  for (TenantId t = 1; t <= 4; ++t) {
    for (uint32_t s = 0; s < 64; ++s) {
      const uint32_t shard = router.Route(t, s);
      ASSERT_LT(shard, 4u);
      EXPECT_EQ(router.Route(t, s), shard);  // stable across calls
      ++load[shard];
    }
  }
  // 256 keys over 4 shards: no shard starves or hoards (loose bounds, deterministic hash).
  for (size_t shard = 0; shard < 4; ++shard) {
    EXPECT_GT(load[shard], 256u / 8) << "shard " << shard << " starved";
    EXPECT_LT(load[shard], 256u / 2) << "shard " << shard << " hoards";
  }
  // One shard degenerates to constant routing.
  const ShardRouter one(1);
  EXPECT_EQ(one.Route(7, 123), 0u);
}

TEST(TenantRegistryTest, AddFindAndRejects) {
  TenantRegistry registry;
  ASSERT_TRUE(registry.Add(MakeTenantSpec(1, "alpha", MakeWinSum(1000))).ok());
  ASSERT_TRUE(registry.Add(MakeTenantSpec(2, "beta", MakeDistinct(1000))).ok());

  EXPECT_EQ(registry.size(), 2u);
  ASSERT_NE(registry.Find(1), nullptr);
  EXPECT_EQ(registry.Find(1)->name, "alpha");
  EXPECT_EQ(registry.Find(3), nullptr);
  EXPECT_EQ(registry.ids(), (std::vector<TenantId>{1, 2}));

  EXPECT_FALSE(registry.Add(MakeTenantSpec(1, "dup", MakeWinSum(1000))).ok());
  EXPECT_FALSE(registry.Add(MakeTenantSpec(3, "", MakeWinSum(1000))).ok());
  TenantSpec zero_quota = MakeTenantSpec(4, "zero", MakeWinSum(1000));
  zero_quota.secure_quota_bytes = 0;
  EXPECT_FALSE(registry.Add(std::move(zero_quota)).ok());

  // Distinct tenants derive distinct key material.
  EXPECT_NE(registry.Find(1)->ingress_key, registry.Find(2)->ingress_key);
  EXPECT_NE(registry.Find(1)->egress_key, registry.Find(2)->egress_key);
}

// The per-engine worker carve: tenants request worker_threads, grants come out of the host's
// worker budget first-come, and an engine created after the budget is spent still gets one
// worker (progress is never denied — and thanks to deterministic sequencing the grant cannot
// change any engine's audit chain or egress, only its throughput).
TEST(EdgeServerTest, WorkerBudgetIsCarvedAcrossEngines) {
  TenantRegistry registry;
  TenantSpec greedy = MakeTenantSpec(1, "greedy", MakeWinSum(1000), 4u << 20);
  greedy.worker_threads = 3;
  ASSERT_TRUE(registry.Add(std::move(greedy)).ok());
  ASSERT_TRUE(registry.Add(MakeTenantSpec(2, "default", MakeWinSum(1000), 4u << 20)).ok());
  ASSERT_TRUE(registry.Add(MakeTenantSpec(3, "starved", MakeWinSum(1000), 4u << 20)).ok());
  const TenantSpec spec1 = *registry.Find(1);
  const TenantSpec spec2 = *registry.Find(2);
  const TenantSpec spec3 = *registry.Find(3);

  EdgeServerConfig cfg;
  cfg.num_shards = 1;  // all three engines share one shard -> carve order is bind order
  cfg.host_secure_budget_bytes = 64u << 20;
  cfg.workers_per_engine = 2;
  cfg.host_worker_budget = 4;  // greedy takes 3, default gets the 1 left, starved floors at 1
  EdgeServer server(cfg, registry);

  std::vector<std::unique_ptr<TestSource>> sources;
  sources.push_back(MakeSource(1, 10, SourceGenConfig(spec1, WorkloadKind::kIntelLab)));
  sources.push_back(MakeSource(2, 20, SourceGenConfig(spec2, WorkloadKind::kIntelLab)));
  sources.push_back(MakeSource(3, 30, SourceGenConfig(spec3, WorkloadKind::kIntelLab)));
  for (auto& src : sources) {
    ASSERT_TRUE(server.BindSource(src->tenant, src->id, src->channel.get()).ok());
  }
  ASSERT_TRUE(server.Start().ok());
  for (auto& src : sources) {
    src->thread = std::thread([&src] { src->generator->RunInto(src->channel.get()); });
  }
  for (auto& src : sources) {
    src->thread.join();
  }
  const ServerReport report = server.Shutdown();

  ASSERT_EQ(report.engines.size(), 3u);
  EXPECT_EQ(report.engines[0].worker_threads, 3);  // requested 3, budget had 4
  EXPECT_EQ(report.engines[1].worker_threads, 1);  // wanted the default 2, only 1 left
  EXPECT_EQ(report.engines[2].worker_threads, 1);  // budget exhausted -> floor of 1
  for (const TenantShardReport& e : report.engines) {
    EXPECT_EQ(e.runner().task_errors, 0u) << e.tenant_name;
    EXPECT_TRUE(e.verified && e.verify.correct) << e.tenant_name;
    EXPECT_EQ(e.runner().windows_emitted, 3u) << e.tenant_name;
  }
}

// The acceptance scenario: 4 shards, 3 tenants, 5 sources. Every tenant's audit uploads verify
// independently against its own pipeline, committed secure bytes stay inside every engine's
// carve and every shard's partition, and results are numerically correct per tenant.
TEST(EdgeServerTest, MultiTenantAuditsVerifyIndependently) {
  TenantRegistry registry;
  ASSERT_TRUE(registry.Add(MakeTenantSpec(1, "sensors", MakeWinSum(1000), 4u << 20)).ok());
  ASSERT_TRUE(registry.Add(MakeTenantSpec(2, "fleet", MakeDistinct(1000), 4u << 20)).ok());
  ASSERT_TRUE(registry.Add(MakeTenantSpec(3, "filter", MakeFilter(1000, 0, 100), 4u << 20)).ok());
  const TenantSpec sensors = *registry.Find(1);
  const TenantSpec fleet = *registry.Find(2);
  const TenantSpec filter = *registry.Find(3);

  EdgeServerConfig cfg;
  cfg.num_shards = 4;
  cfg.host_secure_budget_bytes = 64u << 20;
  cfg.frontend_threads = 2;
  cfg.workers_per_engine = 2;
  EdgeServer server(cfg, std::move(registry));

  // Tenant 1 gets exactly one source so its per-window sums are checkable against a replay.
  const GeneratorConfig sensors_cfg = SourceGenConfig(sensors, WorkloadKind::kIntelLab);
  std::vector<std::unique_ptr<TestSource>> sources;
  sources.push_back(MakeSource(1, 0, sensors_cfg));
  sources.push_back(MakeSource(2, 0, SourceGenConfig(fleet, WorkloadKind::kTaxi)));
  sources.push_back(
      MakeSource(2, 1, SourceGenConfig(fleet, WorkloadKind::kTaxi, 5000, 3, 0, /*seed=*/99)));
  sources.push_back(MakeSource(3, 0, SourceGenConfig(filter, WorkloadKind::kFilterable)));
  sources.push_back(
      MakeSource(3, 1, SourceGenConfig(filter, WorkloadKind::kFilterable, 5000, 3, 0, 7)));

  for (auto& src : sources) {
    ASSERT_TRUE(server.BindSource(src->tenant, src->id, src->channel.get()).ok());
  }
  ASSERT_TRUE(server.Start().ok());
  StartSources(sources);
  JoinSources(sources);
  const ServerReport report = server.Shutdown();

  // Every (shard, tenant) engine ran clean and its audit session verifies independently.
  ASSERT_FALSE(report.engines.empty());
  std::map<uint32_t, size_t> shard_carves;
  for (const TenantShardReport& e : report.engines) {
    EXPECT_EQ(e.runner().task_errors, 0u) << e.tenant_name << " shard " << e.shard;
    EXPECT_EQ(e.dispatch_errors, 0u) << e.tenant_name;
    EXPECT_EQ(e.shed_frames, 0u) << e.tenant_name;
    EXPECT_EQ(e.runner().windows_emitted, 3u) << e.tenant_name << " shard " << e.shard;
    ASSERT_TRUE(e.verified);
    EXPECT_TRUE(e.verify.correct)
        << e.tenant_name << " shard " << e.shard << ": "
        << (e.verify.violations.empty() ? "" : e.verify.violations[0]);
    EXPECT_EQ(e.verify.windows_verified, 3u);
    EXPECT_GT(e.audit.record_count, 0u);
    // Bounded secure memory, per engine and (summed below) per shard.
    EXPECT_LE(e.peak_committed(), e.partition_bytes);
    shard_carves[e.shard] += e.partition_bytes;
  }
  for (const auto& [shard, carved] : shard_carves) {
    EXPECT_LE(carved, server.shard_partition_bytes()) << "shard " << shard;
  }

  // Per tenant: one engine per distinct shard its sources routed to, nothing shed anywhere.
  uint64_t events_generated = 0;
  for (const auto& src : sources) {
    events_generated += src->generator->events_emitted();
  }
  EXPECT_EQ(report.TotalEventsIngested(), events_generated);
  for (const auto& sr : report.sources) {
    EXPECT_GT(sr.frames_delivered, 0u);
    EXPECT_EQ(sr.frames_shed, 0u);
    EXPECT_EQ(sr.shard, server.RouteOf(sr.tenant, sr.source));
  }
  for (TenantId tenant : {1u, 2u, 3u}) {
    std::set<uint32_t> shards;
    for (const auto& sr : report.sources) {
      if (sr.tenant == tenant) {
        shards.insert(sr.shard);
      }
    }
    EXPECT_EQ(report.ForTenant(tenant).size(), shards.size()) << "tenant " << tenant;
  }

  // Numeric correctness for the single-source tenant: per-window sums match a replay.
  const auto sensor_engines = report.ForTenant(1);
  ASSERT_EQ(sensor_engines.size(), 1u);
  std::map<uint32_t, int64_t> expected;
  for (const Event& e : RegenerateEvents(sensors_cfg)) {
    expected[e.ts_ms / 1000] += e.value;
  }
  ASSERT_EQ(sensor_engines[0]->windows.size(), 3u);
  for (const WindowResult& wr : sensor_engines[0]->windows) {
    ASSERT_EQ(wr.blobs.size(), 1u);
    const auto plain = DecryptTenantBlob(sensors, wr.blobs[0]);
    ASSERT_EQ(plain.size(), sizeof(int64_t));
    int64_t sum = 0;
    std::memcpy(&sum, plain.data(), sizeof(sum));
    EXPECT_EQ(sum, expected[wr.window_index]) << "window " << wr.window_index;
  }
}

// One tenant floods a shard past its backpressure threshold; its frames are shed at that
// shard's data-plane door while every other shard's tenants run to completion untouched.
TEST(EdgeServerTest, ShardBackpressureNeverStallsOtherShards) {
  TenantRegistry registry;
  // Filter with a pass-everything band: contributions retain ~the full input, so open windows
  // pin secure memory and the 2MB carve saturates deterministically.
  TenantSpec noisy =
      MakeTenantSpec(1, "noisy", MakeFilter(1000, -2000000000, 2000000000), 2u << 20);
  noisy.admission = AdmissionPolicy::kShed;
  // Shed early (60% of the 2MB carve) so window closes retain allocation headroom.
  noisy.backpressure_threshold = 0.6;
  ASSERT_TRUE(registry.Add(std::move(noisy)).ok());
  ASSERT_TRUE(registry.Add(MakeTenantSpec(2, "quiet-a", MakeWinSum(1000), 4u << 20)).ok());
  ASSERT_TRUE(registry.Add(MakeTenantSpec(3, "quiet-b", MakeWinSum(1000), 4u << 20)).ok());
  const TenantSpec noisy_spec = *registry.Find(1);
  const TenantSpec quiet_a = *registry.Find(2);
  const TenantSpec quiet_b = *registry.Find(3);

  EdgeServerConfig cfg;
  cfg.num_shards = 4;
  cfg.host_secure_budget_bytes = 64u << 20;
  cfg.frontend_threads = 2;
  EdgeServer server(cfg, std::move(registry));

  // Pick source ids so the noisy tenant lands on a shard neither quiet tenant uses.
  const uint32_t quiet_a_shard = server.RouteOf(2, 0);
  const uint32_t quiet_b_shard = server.RouteOf(3, 0);
  uint32_t noisy_source = 0;
  while (server.RouteOf(1, noisy_source) == quiet_a_shard ||
         server.RouteOf(1, noisy_source) == quiet_b_shard) {
    ++noisy_source;
  }

  // All six windows' watermarks arrive only after the data: windows stay open, memory pins.
  std::vector<std::unique_ptr<TestSource>> sources;
  sources.push_back(MakeSource(
      1, noisy_source,
      SourceGenConfig(noisy_spec, WorkloadKind::kFilterable, 30000, 6, /*watermark_lag=*/6)));
  sources.push_back(MakeSource(2, 0, SourceGenConfig(quiet_a, WorkloadKind::kIntelLab)));
  sources.push_back(MakeSource(3, 0, SourceGenConfig(quiet_b, WorkloadKind::kIntelLab)));
  for (auto& src : sources) {
    ASSERT_TRUE(server.BindSource(src->tenant, src->id, src->channel.get()).ok());
  }
  ASSERT_TRUE(server.Start().ok());
  StartSources(sources);
  JoinSources(sources);
  const ServerReport report = server.Shutdown();

  // The noisy engine shed under backpressure but stayed inside its carve, closed all its
  // windows once the watermarks arrived, and still produced a verifiable audit session.
  const auto noisy_engines = report.ForTenant(1);
  ASSERT_EQ(noisy_engines.size(), 1u);
  const TenantShardReport& ne = *noisy_engines[0];
  EXPECT_GT(ne.shed_frames, 0u);
  EXPECT_LT(ne.runner().events_ingested, 6u * 30000u);
  EXPECT_EQ(ne.runner().task_errors, 0u);
  // Shedding starts past ~60% of the carve; tail windows may arrive entirely shed (no state,
  // nothing to emit), but every window that ingested data must close and emit.
  EXPECT_GE(ne.runner().windows_emitted, 3u);
  EXPECT_LE(ne.runner().windows_emitted, 6u);
  EXPECT_LE(ne.peak_committed(), ne.partition_bytes);
  ASSERT_TRUE(ne.verified);
  EXPECT_TRUE(ne.verify.correct)
      << (ne.verify.violations.empty() ? "" : ne.verify.violations[0]);

  // Quiet tenants on other shards: complete, lossless, verified.
  for (TenantId tenant : {2u, 3u}) {
    const auto engines = report.ForTenant(tenant);
    ASSERT_EQ(engines.size(), 1u) << "tenant " << tenant;
    const TenantShardReport& e = *engines[0];
    EXPECT_NE(e.shard, ne.shard);
    EXPECT_EQ(e.runner().windows_emitted, 3u);
    EXPECT_EQ(e.runner().events_ingested, 3u * 5000u);
    EXPECT_EQ(e.shed_frames, 0u);
    EXPECT_EQ(e.runner().task_errors, 0u);
    EXPECT_TRUE(e.verify.correct);
  }
  for (const auto& sr : report.sources) {
    if (sr.tenant != 1) {
      EXPECT_EQ(sr.frames_shed, 0u) << "tenant " << sr.tenant;
    }
  }
}

TEST(EdgeServerTest, QuotaOversubscriptionAndBadBindsAreRejected) {
  TenantRegistry registry;
  ASSERT_TRUE(registry.Add(MakeTenantSpec(1, "big-a", MakeWinSum(1000), 5u << 20)).ok());
  ASSERT_TRUE(registry.Add(MakeTenantSpec(2, "big-b", MakeWinSum(1000), 5u << 20)).ok());

  EdgeServerConfig cfg;
  cfg.num_shards = 2;
  cfg.host_secure_budget_bytes = 16u << 20;  // 8MB per shard: two 5MB carves cannot share
  EdgeServer server(cfg, std::move(registry));

  // Find source ids that collide on one shard.
  uint32_t b_source = 0;
  while (server.RouteOf(2, b_source) != server.RouteOf(1, 0)) {
    ++b_source;
  }

  FrameChannel ch_a(4);
  FrameChannel ch_a2(4);
  FrameChannel ch_b(4);
  ASSERT_TRUE(server.BindSource(1, 0, &ch_a).ok());
  // A second source of the same tenant on the same engine carves nothing new.
  uint32_t a_second = 1;
  while (server.RouteOf(1, a_second) != server.RouteOf(1, 0)) {
    ++a_second;
  }
  ASSERT_TRUE(server.BindSource(1, a_second, &ch_a2).ok());

  const Status oversubscribed = server.BindSource(2, b_source, &ch_b);
  EXPECT_EQ(oversubscribed.code(), StatusCode::kResourceExhausted);

  EXPECT_EQ(server.BindSource(9, 0, &ch_b).code(), StatusCode::kNotFound);
  EXPECT_EQ(server.BindSource(1, 0, &ch_a).code(), StatusCode::kInvalidArgument);  // duplicate
  EXPECT_EQ(server.BindSource(1, 5, nullptr).code(), StatusCode::kInvalidArgument);

  const auto snap = server.shard_snapshot(server.RouteOf(1, 0));
  EXPECT_LE(snap.carved_bytes, snap.partition_bytes);
  EXPECT_GT(snap.carved_bytes, 0u);

  // Run the bound sources so the server shuts down cleanly.
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.Start().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(server.BindSource(1, 77, &ch_b).code(), StatusCode::kFailedPrecondition);
  ch_a.Close();
  ch_a2.Close();
  const ServerReport report = server.Shutdown();
  EXPECT_EQ(report.engines.size(), 1u);
}

// A two-stream (Join) tenant is tenant-homed: all its sources land on one shard so both
// streams meet in one engine, and the joined session verifies.
TEST(EdgeServerTest, MultiStreamTenantIsTenantHomed) {
  TenantRegistry registry;
  Pipeline join = MakeJoin(1000);
  ASSERT_TRUE(registry.Add(MakeTenantSpec(1, "join", std::move(join), 8u << 20)).ok());
  const TenantSpec spec = *registry.Find(1);

  EdgeServerConfig cfg;
  cfg.num_shards = 4;
  cfg.host_secure_budget_bytes = 64u << 20;
  EdgeServer server(cfg, std::move(registry));

  for (uint32_t s = 0; s < 16; ++s) {
    EXPECT_EQ(server.RouteOf(1, s), server.RouteOf(1, 0));
  }

  GeneratorConfig left = SourceGenConfig(spec, WorkloadKind::kSynthetic, 3000);
  left.workload.num_keys = 500;
  GeneratorConfig right = left;
  right.workload.seed = left.workload.seed + 1;

  std::vector<std::unique_ptr<TestSource>> sources;
  sources.push_back(MakeSource(1, 0, left, /*pipeline_stream=*/0));
  sources.push_back(MakeSource(1, 1, right, /*pipeline_stream=*/1));
  for (auto& src : sources) {
    ASSERT_TRUE(
        server.BindSource(src->tenant, src->id, src->channel.get(), src->pipeline_stream).ok());
  }
  EXPECT_EQ(server.BindSource(1, 2, sources[0]->channel.get(), 2).code(),
            StatusCode::kInvalidArgument);  // stream out of range

  ASSERT_TRUE(server.Start().ok());
  StartSources(sources);
  JoinSources(sources);
  const ServerReport report = server.Shutdown();

  ASSERT_EQ(report.engines.size(), 1u);
  const TenantShardReport& e = report.engines[0];
  EXPECT_EQ(e.runner().task_errors, 0u);
  EXPECT_EQ(e.runner().windows_emitted, 3u);
  ASSERT_TRUE(e.verified);
  EXPECT_TRUE(e.verify.correct)
      << (e.verify.violations.empty() ? "" : e.verify.violations[0]);

  // Reference row count for window 0, replayed from both seeds.
  std::map<uint32_t, uint64_t> l0;
  std::map<uint32_t, uint64_t> r0;
  for (const Event& ev : RegenerateEvents(left)) {
    if (ev.ts_ms < 1000) {
      ++l0[ev.key];
    }
  }
  for (const Event& ev : RegenerateEvents(right)) {
    if (ev.ts_ms < 1000) {
      ++r0[ev.key];
    }
  }
  uint64_t expected_rows = 0;
  for (const auto& [key, n] : l0) {
    auto it = r0.find(key);
    if (it != r0.end()) {
      expected_rows += n * it->second;
    }
  }
  for (const WindowResult& wr : e.windows) {
    if (wr.window_index != 0) {
      continue;
    }
    ASSERT_EQ(wr.blobs.size(), 1u);
    const auto plain = DecryptTenantBlob(spec, wr.blobs[0]);
    EXPECT_EQ(plain.size() / sizeof(JoinRow), expected_rows);
  }
}

// The elastic-resize acceptance scenario: grow N -> N+1 and shrink back under live ingest.
// No event is lost (kStall sources simply stall while engines move), every engine's audit
// chain verifies across both moves as one continued session, and per-shard secure-memory
// quotas hold before, during, and after.
TEST(EdgeServerTest, ElasticResizeUnderLiveIngestIsLossless) {
  TenantRegistry registry;
  ASSERT_TRUE(registry.Add(MakeTenantSpec(1, "sensors", MakeWinSum(1000), 4u << 20)).ok());
  ASSERT_TRUE(registry.Add(MakeTenantSpec(2, "fleet", MakeDistinct(1000), 4u << 20)).ok());
  ASSERT_TRUE(registry.Add(MakeTenantSpec(3, "join", MakeJoin(1000), 8u << 20)).ok());
  const TenantSpec sensors = *registry.Find(1);
  const TenantSpec fleet = *registry.Find(2);
  const TenantSpec join = *registry.Find(3);

  EdgeServerConfig cfg;
  cfg.num_shards = 3;
  // Sized so any engine placement fits any shard count used here: the plan must never be the
  // reason a resize fails in this test.
  cfg.host_secure_budget_bytes = 96u << 20;
  cfg.frontend_threads = 2;
  cfg.workers_per_engine = 2;
  EdgeServer server(cfg, std::move(registry));

  constexpr uint32_t kNumWindows = 10;
  constexpr uint32_t kEventsPerWindow = 3000;
  auto gen_cfg = [&](const TenantSpec& spec, WorkloadKind kind, uint64_t seed) {
    GeneratorConfig g = SourceGenConfig(spec, kind, kEventsPerWindow, kNumWindows, 0, seed);
    g.batch_events = 500;
    return g;
  };
  std::vector<std::unique_ptr<TestSource>> sources;
  sources.push_back(MakeSource(1, 0, gen_cfg(sensors, WorkloadKind::kIntelLab, 42)));
  sources.push_back(MakeSource(1, 1, gen_cfg(sensors, WorkloadKind::kIntelLab, 43)));
  sources.push_back(MakeSource(2, 0, gen_cfg(fleet, WorkloadKind::kTaxi, 44)));
  sources.push_back(MakeSource(3, 0, gen_cfg(join, WorkloadKind::kSynthetic, 45), 0));
  sources.push_back(MakeSource(3, 1, gen_cfg(join, WorkloadKind::kSynthetic, 46), 1));
  for (auto& src : sources) {
    ASSERT_TRUE(
        server.BindSource(src->tenant, src->id, src->channel.get(), src->pipeline_stream).ok());
  }
  ASSERT_TRUE(server.Start().ok());
  StartSources(sources);

  // Grow, then shrink, while sources are live. Each resize drains, seals, re-homes, resumes.
  ASSERT_EQ(server.num_shards(), 3u);
  const Status grown = server.Resize(4);
  ASSERT_TRUE(grown.ok()) << grown.ToString();
  EXPECT_EQ(server.num_shards(), 4u);
  const Status shrunk = server.Resize(3);
  ASSERT_TRUE(shrunk.ok()) << shrunk.ToString();
  EXPECT_EQ(server.num_shards(), 3u);

  JoinSources(sources);
  const ServerReport report = server.Shutdown();

  // Lossless: every generated event was ingested by some engine (stall admission, no shed).
  uint64_t events_generated = 0;
  for (const auto& src : sources) {
    events_generated += src->generator->events_emitted();
  }
  EXPECT_EQ(report.TotalEventsIngested(), events_generated);
  for (const auto& sr : report.sources) {
    EXPECT_EQ(sr.frames_shed, 0u);
    EXPECT_GT(sr.frames_delivered, 0u);
  }

  // Every engine moved twice, kept its audit chain verifiable as one continued session, and
  // stayed inside its carve in every incarnation.
  ASSERT_FALSE(report.engines.empty());
  std::map<uint32_t, size_t> shard_carves;
  for (const TenantShardReport& e : report.engines) {
    EXPECT_EQ(e.restores, 2u) << e.tenant_name;
    EXPECT_EQ(e.uploads, 3u) << e.tenant_name;  // two seal-time links + the final flush
    EXPECT_TRUE(e.chain_ok) << e.tenant_name;
    EXPECT_EQ(e.runner().task_errors, 0u) << e.tenant_name;
    EXPECT_EQ(e.dispatch_errors, 0u) << e.tenant_name;
    EXPECT_EQ(e.shed_frames, 0u) << e.tenant_name;
    EXPECT_EQ(e.runner().windows_emitted, kNumWindows) << e.tenant_name;
    ASSERT_TRUE(e.verified);
    EXPECT_TRUE(e.verify.correct)
        << e.tenant_name << " shard " << e.shard << ": "
        << (e.verify.violations.empty() ? "" : e.verify.violations[0]);
    EXPECT_EQ(e.verify.windows_verified, kNumWindows) << e.tenant_name;
    EXPECT_LE(e.peak_committed(), e.partition_bytes) << e.tenant_name;
    shard_carves[e.shard] += e.partition_bytes;
    // Windows were collected across incarnations: all present, each egressed.
    EXPECT_EQ(e.windows.size(), kNumWindows) << e.tenant_name;
  }
  for (const auto& [shard, carved] : shard_carves) {
    EXPECT_LE(carved, server.shard_partition_bytes()) << "shard " << shard;
  }
  // The join tenant stayed single-engined through both moves (never split).
  EXPECT_EQ(report.ForTenant(3).size(), 1u);
}

// An infeasible resize (per-shard partition smaller than a single engine's carve) is rejected
// by the plan before anything is drained, and the server keeps serving as if nothing happened.
TEST(EdgeServerTest, InfeasibleResizeIsRejectedWithoutDisruption) {
  TenantRegistry registry;
  ASSERT_TRUE(registry.Add(MakeTenantSpec(1, "a", MakeWinSum(1000), 5u << 20)).ok());
  ASSERT_TRUE(registry.Add(MakeTenantSpec(2, "b", MakeWinSum(1000), 5u << 20)).ok());
  const TenantSpec a = *registry.Find(1);
  const TenantSpec b = *registry.Find(2);

  EdgeServerConfig cfg;
  cfg.num_shards = 2;
  cfg.host_secure_budget_bytes = 40u << 20;
  EdgeServer server(cfg, std::move(registry));

  std::vector<std::unique_ptr<TestSource>> sources;
  sources.push_back(MakeSource(1, 0, SourceGenConfig(a, WorkloadKind::kIntelLab)));
  sources.push_back(MakeSource(2, 0, SourceGenConfig(b, WorkloadKind::kIntelLab)));
  for (auto& src : sources) {
    ASSERT_TRUE(server.BindSource(src->tenant, src->id, src->channel.get()).ok());
  }
  ASSERT_TRUE(server.Start().ok());
  StartSources(sources);

  // 40MB / 16 shards = 2.5MB per shard < one 5MB carve: infeasible for every placement.
  const Status rejected = server.Resize(16);
  EXPECT_EQ(rejected.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(server.num_shards(), 2u);

  JoinSources(sources);
  const ServerReport report = server.Shutdown();
  for (const TenantShardReport& e : report.engines) {
    EXPECT_EQ(e.restores, 0u);
    EXPECT_EQ(e.runner().windows_emitted, 3u) << e.tenant_name;
    EXPECT_TRUE(e.chain_ok);
    EXPECT_TRUE(e.verify.correct);
  }
  EXPECT_EQ(report.TotalEventsIngested(),
            sources[0]->generator->events_emitted() + sources[1]->generator->events_emitted());
}

// Crash/rebalance recovery on one shard: seal its engines mid-session, then restore them in
// place; the session continues losslessly and the audit chain stays green.
TEST(EdgeServerTest, ShardCheckpointRestoreRoundTripUnderLiveIngest) {
  TenantRegistry registry;
  ASSERT_TRUE(registry.Add(MakeTenantSpec(1, "sensors", MakeWinSum(1000), 4u << 20)).ok());
  const TenantSpec sensors = *registry.Find(1);

  EdgeServerConfig cfg;
  cfg.num_shards = 2;
  cfg.host_secure_budget_bytes = 32u << 20;
  EdgeServer server(cfg, std::move(registry));

  GeneratorConfig gen = SourceGenConfig(sensors, WorkloadKind::kIntelLab, 4000, 6);
  gen.batch_events = 500;
  std::vector<std::unique_ptr<TestSource>> sources;
  sources.push_back(MakeSource(1, 0, gen));
  ASSERT_TRUE(server.BindSource(1, 0, sources[0]->channel.get()).ok());
  ASSERT_TRUE(server.Start().ok());
  StartSources(sources);

  const uint32_t shard = server.RouteOf(1, 0);
  auto checkpoints = server.Checkpoint({.shard = shard, .detach = true});
  ASSERT_TRUE(checkpoints.ok()) << checkpoints.status().ToString();
  ASSERT_EQ(checkpoints->size(), 1u);
  EXPECT_EQ((*checkpoints)[0].tenant(), 1u);
  // While sealed-and-detached, the shard hosts nothing and the source stalls at the frontend.
  EXPECT_EQ(server.shard_snapshot(shard).carved_bytes, 0u);

  ASSERT_TRUE(server.Restore(shard, std::move(*checkpoints)).ok());
  JoinSources(sources);
  const ServerReport report = server.Shutdown();

  ASSERT_EQ(report.engines.size(), 1u);
  const TenantShardReport& e = report.engines[0];
  EXPECT_EQ(e.restores, 1u);
  EXPECT_EQ(e.uploads, 2u);
  EXPECT_TRUE(e.chain_ok);
  EXPECT_EQ(e.runner().task_errors, 0u);
  EXPECT_EQ(e.dispatch_errors, 0u);
  EXPECT_EQ(e.runner().windows_emitted, 6u);
  EXPECT_EQ(e.runner().events_ingested, sources[0]->generator->events_emitted());
  EXPECT_TRUE(e.verify.correct)
      << (e.verify.violations.empty() ? "" : e.verify.violations[0]);
  EXPECT_LE(e.peak_committed(), e.partition_bytes);
}

// A sealed shard that is never restored (state migrated elsewhere, original server retired)
// must not wedge shutdown: its sources' undeliverable frames are dropped and counted.
TEST(EdgeServerTest, ShutdownAfterUnrestoredCheckpointTerminates) {
  TenantRegistry registry;
  ASSERT_TRUE(registry.Add(MakeTenantSpec(1, "sensors", MakeWinSum(1000), 4u << 20)).ok());
  const TenantSpec sensors = *registry.Find(1);

  EdgeServerConfig cfg;
  cfg.num_shards = 2;
  cfg.host_secure_budget_bytes = 32u << 20;
  EdgeServer server(cfg, std::move(registry));

  std::vector<std::unique_ptr<TestSource>> sources;
  sources.push_back(MakeSource(1, 0, SourceGenConfig(sensors, WorkloadKind::kIntelLab)));
  ASSERT_TRUE(server.BindSource(1, 0, sources[0]->channel.get()).ok());
  ASSERT_TRUE(server.Start().ok());
  StartSources(sources);

  auto checkpoints = server.Checkpoint({.shard = server.RouteOf(1, 0), .detach = true});
  ASSERT_TRUE(checkpoints.ok());
  ASSERT_EQ(checkpoints->size(), 1u);
  // The sealed engines leave with the checkpoints; the server shuts down without them — and
  // without hanging on the source's undeliverable frames. (Shutdown first: it closes the
  // source channel, which is what unblocks a generator stalled against the sealed shard.)
  const ServerReport report = server.Shutdown();
  JoinSources(sources);
  EXPECT_TRUE(report.engines.empty());
  ASSERT_EQ(report.sources.size(), 1u);
}

// Tamper-evident recovery at the serving layer: a checkpoint sealed before newer uploads left
// the engine (stale/fork replay) is rejected, as is restoring an engine that is already live.
TEST(EdgeServerTest, StaleOrDuplicateShardCheckpointIsRejected) {
  TenantRegistry registry;
  ASSERT_TRUE(registry.Add(MakeTenantSpec(1, "sensors", MakeWinSum(1000), 4u << 20)).ok());
  const TenantSpec sensors = *registry.Find(1);

  EdgeServerConfig cfg;
  cfg.num_shards = 2;
  cfg.host_secure_budget_bytes = 32u << 20;
  EdgeServer server(cfg, std::move(registry));

  FrameChannel channel(256);
  ASSERT_TRUE(server.BindSource(1, 0, &channel).ok());
  ASSERT_TRUE(server.Start().ok());
  // Feed and close a short session up front; the frontends drain it into the engine.
  Generator generator(SourceGenConfig(sensors, WorkloadKind::kIntelLab, 1000, 3));
  generator.RunInto(&channel);

  const uint32_t shard = server.RouteOf(1, 0);
  auto first = server.Checkpoint({.shard = shard, .detach = true});
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->size(), 1u);
  const SealArtifact stale = (*first)[0];  // attacker keeps a copy

  ASSERT_TRUE(server.Restore(shard, std::move(*first)).ok());
  auto second = server.Checkpoint({.shard = shard, .detach = true});
  ASSERT_TRUE(second.ok());
  const SealArtifact current = (*second)[0];

  // The stale copy self-verifies but no longer continues the engine's chain.
  EXPECT_EQ(server.Restore(shard, {stale}).code(), StatusCode::kDataLoss);
  // The current seal restores.
  ASSERT_TRUE(server.Restore(shard, std::move(*second)).ok());
  // A second restore of the same seal is refused: the engine is already live.
  EXPECT_EQ(server.Restore(shard, {current}).code(), StatusCode::kFailedPrecondition);

  const ServerReport report = server.Shutdown();
  ASSERT_EQ(report.engines.size(), 1u);
  EXPECT_EQ(report.engines[0].restores, 2u);
  EXPECT_TRUE(report.engines[0].chain_ok);
  EXPECT_TRUE(report.engines[0].verify.correct)
      << (report.engines[0].verify.violations.empty()
              ? ""
              : report.engines[0].verify.violations[0]);
}

// Regression stress for the Runner drain/submit race: Drain spinning concurrently with
// ingest + watermark submission must never miss an enqueued window close — after the final
// Drain every window is emitted, every time.
TEST(RunnerDrainTest, ConcurrentDrainNeverMissesWindowCloses) {
  DataPlaneConfig cfg = testing::SmallDataPlaneConfig(/*decrypt_ingress=*/false);
  DataPlane dp(cfg);
  RunnerConfig rc;
  rc.knobs.worker_threads = 2;
  Runner runner(&dp, MakeWinSum(100), rc);

  std::atomic<bool> stop{false};
  std::thread drainer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      runner.Drain();
    }
  });

  constexpr uint32_t kWindows = 40;
  std::vector<Event> batch(200);
  for (uint32_t w = 0; w < kWindows; ++w) {
    for (size_t i = 0; i < batch.size(); ++i) {
      batch[i] = {.ts_ms = static_cast<EventTimeMs>(w * 100 + i % 100), .key = 1, .value = 1};
    }
    ASSERT_TRUE(runner
                    .IngestFrame(std::span<const uint8_t>(
                        reinterpret_cast<const uint8_t*>(batch.data()),
                        batch.size() * sizeof(Event)))
                    .ok());
    ASSERT_TRUE(runner.AdvanceWatermark((w + 1) * 100).ok());
    // Sequential contract: once AdvanceWatermark returned, Drain must include its closes.
    runner.Drain();
    ASSERT_EQ(runner.stats().windows_emitted, w + 1) << "window close missed";
  }
  stop.store(true, std::memory_order_relaxed);
  drainer.join();
  runner.Drain();
  EXPECT_EQ(runner.stats().windows_emitted, kWindows);
  EXPECT_EQ(runner.stats().task_errors, 0u);
  EXPECT_EQ(runner.TakeResults().size(), kWindows);
}

// Admission stalls must park on the ingest CV (woken by the shard queues' space listeners),
// not spin: with the shard queue reporting full 20 times, a stalled kStall source retries at
// the 5ms safety-net cadence, so the stall takes tens of milliseconds of *sleeping* — the old
// 100us poll burned a core to finish the same 20 rounds in ~2ms. No frame is lost either way.
TEST(EdgeServerTest, AdmissionStallParksInsteadOfSpinning) {
  TenantRegistry registry;
  ASSERT_TRUE(registry.Add(MakeTenantSpec(1, "stall", MakeWinSum(1000), 4u << 20)).ok());
  const TenantSpec spec = *registry.Find(1);

  EdgeServerConfig cfg;
  cfg.num_shards = 1;
  cfg.host_secure_budget_bytes = 32u << 20;
  cfg.frontend_threads = 1;  // one frontend, one source: TryPush hit counts are exact
  EdgeServer server(cfg, std::move(registry));

  auto src = MakeSource(1, 0, SourceGenConfig(spec, WorkloadKind::kIntelLab, 3000, 1));
  ASSERT_TRUE(server.BindSource(1, 0, src->channel.get()).ok());

  obs::Counter* stall_retries =
      obs::MetricsRegistry::Global().GetCounter("sbt_admission_stall_retries_total");
  const uint64_t retries_before = stall_retries->Value();

  // The first 20 shard-queue pushes report full. Hit 1 is the fresh delivery (held as
  // `pending`, not counted as a retry); hits 2..20 are 19 failed retries, each preceded by a
  // parked kFrontendIdleWait; hit 21 succeeds and the stream flows.
  testing::ScopedFailPoint full("channel.try_push", testing::ScopedFailPoint::Counted(0, 20));

  ASSERT_TRUE(server.Start().ok());
  const auto t0 = std::chrono::steady_clock::now();
  src->generator->RunInto(src->channel.get());
  const ServerReport report = server.Shutdown();
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(std::chrono::steady_clock::now() - t0);

  EXPECT_EQ(stall_retries->Value() - retries_before, 19u);
  ASSERT_EQ(report.sources.size(), 1u);
  EXPECT_EQ(report.sources[0].admission_retries, 19u);
  EXPECT_EQ(report.sources[0].frames_shed, 0u);       // kStall holds, never drops
  EXPECT_GT(report.sources[0].frames_delivered, 0u);  // the held frame went through
  // 19 retries at the 5ms parked cadence is >= ~95ms of sleeping; 40ms is the conservative
  // floor that still rules out the old 100us spin (which finished in ~2ms).
  EXPECT_GE(elapsed.count(), 40);
  ASSERT_EQ(report.engines.size(), 1u);
  EXPECT_EQ(report.engines[0].runner().task_errors, 0u);
  EXPECT_TRUE(report.engines[0].verified && report.engines[0].verify.correct);
}

}  // namespace
}  // namespace sbt
