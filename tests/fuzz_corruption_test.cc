// Randomized corruption of the two tamper-evident artifacts that leave the TEE — compressed
// audit uploads and sealed engine checkpoints, full and delta alike (DESIGN.md invariants 2-3
// and the delta-seal chain rule). A seed matrix drives deterministic bit-flips, truncations,
// and chain-order violations; every corruption must surface as a kDataLoss-class rejection,
// and decode/restore/apply must never crash regardless of what the bytes decode to.

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "src/attest/audit_chain.h"
#include "src/attest/compress.h"
#include "src/common/rng.h"
#include "src/control/benchmarks.h"
#include "src/control/engine.h"
#include "src/control/lifecycle.h"
#include "src/core/data_plane.h"
#include "tests/testing/testing.h"

namespace sbt {
namespace {

DataPlaneConfig FuzzConfig() {
  DataPlaneConfig cfg = testing::SmallDataPlaneConfig(/*decrypt_ingress=*/false);
  cfg.partition = testing::SmallTzPartition(4);
  return cfg;
}

// One real engine session, sealed mid-flight as a chain: a full seal with live window state,
// then two delta seals as the session keeps running.
struct SealedFixture {
  DataPlaneConfig cfg = FuzzConfig();
  SealedCheckpoint sealed;  // the full seal (chain base)
  AuditUpload upload;
  SealedCheckpoint delta1;
  SealedCheckpoint delta2;
};

void IngestFuzzWindow(Runner& runner, uint32_t w) {
  std::vector<Event> events = testing::MakeEvents(2000, 32, 1000, 7 + w);
  for (Event& e : events) {
    e.ts_ms = w * 1000 + e.ts_ms % 1000;
  }
  EXPECT_TRUE(runner.IngestFrame(testing::AsBytes(events)).ok());
  runner.Drain();
}

const SealedFixture& Fixture() {
  static const SealedFixture* fixture = [] {
    auto* f = new SealedFixture();
    DataPlane dp(f->cfg);
    RunnerConfig rc;
    rc.knobs.worker_threads = 1;
    Runner runner(&dp, MakeDistinct(1000), rc);
    EngineLifecycle lifecycle(&dp, &runner);
    for (uint32_t w = 0; w < 2; ++w) {
      IngestFuzzWindow(runner, w);
    }
    auto bundle = lifecycle.Checkpoint({}, nullptr);
    EXPECT_TRUE(bundle.ok());
    f->sealed = std::move(bundle->sealed);
    f->upload = std::move(bundle->audit);
    // Extend the session and cut two deltas on top of the full base.
    IngestFuzzWindow(runner, 2);
    auto d1 = lifecycle.Checkpoint({.mode = SealMode::kDelta}, nullptr);
    EXPECT_TRUE(d1.ok());
    EXPECT_EQ(d1->sealed.mode, SealMode::kDelta);
    f->delta1 = std::move(d1->sealed);
    EXPECT_TRUE(runner.AdvanceWatermark(1000).ok());
    runner.Drain();
    auto d2 = lifecycle.Checkpoint({.mode = SealMode::kDelta}, nullptr);
    EXPECT_TRUE(d2.ok());
    EXPECT_EQ(d2->sealed.mode, SealMode::kDelta);
    f->delta2 = std::move(d2->sealed);
    return f;
  }();
  return *fixture;
}

class CorruptionFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CorruptionFuzz, CorruptAuditUploadsAreRejectedAndNeverCrash) {
  const SealedFixture& fx = Fixture();
  ASSERT_GT(fx.upload.compressed.size(), 8u);
  AuditChainVerifier pristine(fx.cfg.mac_key);
  ASSERT_TRUE(pristine.Accept(fx.upload).ok());

  Xoshiro256 rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    AuditUpload corrupt = fx.upload;
    switch (rng.NextBelow(5)) {
      case 0:  // bit flip in the compressed batch
        corrupt.compressed[rng.NextBelow(corrupt.compressed.size())] ^=
            static_cast<uint8_t>(1u << rng.NextBelow(8));
        break;
      case 1:  // truncation
        corrupt.compressed.resize(rng.NextBelow(corrupt.compressed.size()));
        break;
      case 2:  // MAC tamper
        corrupt.mac[rng.NextBelow(corrupt.mac.size())] ^=
            static_cast<uint8_t>(1u << rng.NextBelow(8));
        break;
      case 3:  // chain position tamper
        corrupt.chain_seq += 1 + rng.NextBelow(1000);
        break;
      default:  // claimed-predecessor tamper
        corrupt.chain_prev[rng.NextBelow(corrupt.chain_prev.size())] ^=
            static_cast<uint8_t>(1u << rng.NextBelow(8));
        break;
    }
    AuditChainVerifier verifier(fx.cfg.mac_key);
    const Status accepted = verifier.Accept(corrupt);
    ASSERT_FALSE(accepted.ok()) << "trial " << trial;
    EXPECT_EQ(accepted.code(), StatusCode::kDataLoss) << "trial " << trial;
    // The decoder itself must never crash on corrupt bytes, whatever it returns.
    auto decoded = DecodeAuditBatch(corrupt.compressed);
    (void)decoded;
  }
}

TEST_P(CorruptionFuzz, CorruptSealedCheckpointsAreRejectedAndNeverCrash) {
  const SealedFixture& fx = Fixture();
  ASSERT_GT(fx.sealed.ciphertext.size(), 16u);

  Xoshiro256 rng(GetParam());
  for (int trial = 0; trial < 24; ++trial) {
    SealedCheckpoint corrupt = fx.sealed;
    switch (rng.NextBelow(5)) {
      case 0:  // bit flip anywhere in the ciphertext
        corrupt.ciphertext[rng.NextBelow(corrupt.ciphertext.size())] ^=
            static_cast<uint8_t>(1u << rng.NextBelow(8));
        break;
      case 1:  // truncation
        corrupt.ciphertext.resize(rng.NextBelow(corrupt.ciphertext.size()));
        break;
      case 2:  // MAC tamper
        corrupt.mac[rng.NextBelow(corrupt.mac.size())] ^=
            static_cast<uint8_t>(1u << rng.NextBelow(8));
        break;
      case 3:  // chain position tamper
        corrupt.identity.chain_seq += 1 + rng.NextBelow(1000);
        break;
      default:  // claimed chain head tamper
        corrupt.identity.chain_head[rng.NextBelow(corrupt.identity.chain_head.size())] ^=
            static_cast<uint8_t>(1u << rng.NextBelow(8));
        break;
    }
    DataPlane fresh(fx.cfg);
    auto restored = fresh.Restore(corrupt);
    ASSERT_FALSE(restored.ok()) << "trial " << trial;
    EXPECT_EQ(restored.status().code(), StatusCode::kDataLoss) << "trial " << trial;
  }
  // The pristine artifact still restores: rejection above is the corruption's doing.
  DataPlane fresh(fx.cfg);
  EXPECT_TRUE(fresh.Restore(fx.sealed).ok());
}

TEST_P(CorruptionFuzz, CorruptMidChainDeltasAreRejectedAndLeaveTheBaseIntact) {
  // The delta-seal chain rule under fuzz: any corrupted, reordered, or replayed mid-chain
  // delta is rejected — and because a rejected delta must not half-apply, the SAME replica
  // instance then accepts the pristine chain.
  const SealedFixture& fx = Fixture();
  ASSERT_GT(fx.delta1.ciphertext.size(), 0u);

  Xoshiro256 rng(GetParam());
  for (int trial = 0; trial < 12; ++trial) {
    DataPlane replica(fx.cfg);
    ASSERT_TRUE(replica.Restore(fx.sealed).ok()) << "trial " << trial;
    Status rejected;
    switch (rng.NextBelow(8)) {
      case 0: {  // bit flip anywhere in the delta ciphertext
        SealedCheckpoint corrupt = fx.delta1;
        corrupt.ciphertext[rng.NextBelow(corrupt.ciphertext.size())] ^=
            static_cast<uint8_t>(1u << rng.NextBelow(8));
        rejected = replica.ApplyDelta(corrupt).status();
        break;
      }
      case 1: {  // truncation
        SealedCheckpoint corrupt = fx.delta1;
        corrupt.ciphertext.resize(rng.NextBelow(corrupt.ciphertext.size()));
        rejected = replica.ApplyDelta(corrupt).status();
        break;
      }
      case 2: {  // MAC tamper
        SealedCheckpoint corrupt = fx.delta1;
        corrupt.mac[rng.NextBelow(corrupt.mac.size())] ^=
            static_cast<uint8_t>(1u << rng.NextBelow(8));
        rejected = replica.ApplyDelta(corrupt).status();
        break;
      }
      case 3: {  // base position tamper (graft onto the wrong link)
        SealedCheckpoint corrupt = fx.delta1;
        corrupt.base_chain_seq += 1 + rng.NextBelow(1000);
        rejected = replica.ApplyDelta(corrupt).status();
        break;
      }
      case 4: {  // claimed base head tamper
        SealedCheckpoint corrupt = fx.delta1;
        corrupt.base_chain_head[rng.NextBelow(corrupt.base_chain_head.size())] ^=
            static_cast<uint8_t>(1u << rng.NextBelow(8));
        rejected = replica.ApplyDelta(corrupt).status();
        break;
      }
      case 5: {  // seal-position tamper (the delta's own chain stamp)
        SealedCheckpoint corrupt = fx.delta1;
        corrupt.identity.chain_seq += 1 + rng.NextBelow(1000);
        rejected = replica.ApplyDelta(corrupt).status();
        break;
      }
      case 6:  // reordered: the second delta without the first
        rejected = replica.ApplyDelta(fx.delta2).status();
        break;
      default: {  // replayed: the first delta twice
        ASSERT_TRUE(replica.ApplyDelta(fx.delta1).ok()) << "trial " << trial;
        rejected = replica.ApplyDelta(fx.delta1).status();
        // Rewind for the pristine-chain check below: this replica already holds delta1.
        ASSERT_FALSE(rejected.ok()) << "trial " << trial;
        EXPECT_EQ(rejected.code(), StatusCode::kDataLoss) << "trial " << trial;
        EXPECT_TRUE(replica.ApplyDelta(fx.delta2).ok()) << "trial " << trial;
        continue;
      }
    }
    ASSERT_FALSE(rejected.ok()) << "trial " << trial;
    EXPECT_EQ(rejected.code(), StatusCode::kDataLoss) << "trial " << trial;
    // Nothing half-applied: the pristine chain still lands on this very replica.
    EXPECT_TRUE(replica.ApplyDelta(fx.delta1).ok()) << "trial " << trial;
    EXPECT_TRUE(replica.ApplyDelta(fx.delta2).ok()) << "trial " << trial;
  }
}

// Seed matrix: 8 seeds by default; the nightly workflow widens it via SBT_FUZZ_SEEDS (seed
// values stay deterministic — 1..N — so a nightly failure reproduces locally by exporting the
// same count and filtering to the failing seed).
std::vector<uint64_t> FuzzSeeds() {
  size_t count = 8;
  if (const char* env = std::getenv("SBT_FUZZ_SEEDS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) {
      count = static_cast<size_t>(parsed);
    }
  }
  std::vector<uint64_t> seeds(count);
  for (size_t i = 0; i < count; ++i) {
    seeds[i] = i + 1;
  }
  return seeds;
}

INSTANTIATE_TEST_SUITE_P(SeedMatrix, CorruptionFuzz, ::testing::ValuesIn(FuzzSeeds()));

}  // namespace
}  // namespace sbt
