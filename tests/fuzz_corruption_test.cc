// Randomized corruption of the two tamper-evident artifacts that leave the TEE — compressed
// audit uploads and sealed engine checkpoints (DESIGN.md invariants 2-3). A seed matrix drives
// deterministic bit-flips and truncations; every corruption must surface as a kDataLoss-class
// rejection, and decode/restore must never crash regardless of what the bytes decode to.

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "src/attest/audit_chain.h"
#include "src/attest/compress.h"
#include "src/common/rng.h"
#include "src/control/benchmarks.h"
#include "src/control/engine.h"
#include "src/core/data_plane.h"
#include "tests/testing/testing.h"

namespace sbt {
namespace {

DataPlaneConfig FuzzConfig() {
  DataPlaneConfig cfg = testing::SmallDataPlaneConfig(/*decrypt_ingress=*/false);
  cfg.partition = testing::SmallTzPartition(4);
  return cfg;
}

// One real engine session, sealed mid-flight: the checkpoint carries live window state.
struct SealedFixture {
  DataPlaneConfig cfg = FuzzConfig();
  SealedCheckpoint sealed;
  AuditUpload upload;
};

const SealedFixture& Fixture() {
  static const SealedFixture* fixture = [] {
    auto* f = new SealedFixture();
    DataPlane dp(f->cfg);
    RunnerConfig rc;
    rc.worker_threads = 1;
    Runner runner(&dp, MakeDistinct(1000), rc);
    for (uint32_t w = 0; w < 2; ++w) {
      std::vector<Event> events = testing::MakeEvents(2000, 32, 1000, 7 + w);
      for (Event& e : events) {
        e.ts_ms = w * 1000 + e.ts_ms % 1000;
      }
      EXPECT_TRUE(runner.IngestFrame(testing::AsBytes(events)).ok());
    }
    runner.Drain();
    auto bundle = CheckpointEngine(dp, runner, {}, nullptr);
    EXPECT_TRUE(bundle.ok());
    f->sealed = std::move(bundle->sealed);
    f->upload = std::move(bundle->audit);
    return f;
  }();
  return *fixture;
}

class CorruptionFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CorruptionFuzz, CorruptAuditUploadsAreRejectedAndNeverCrash) {
  const SealedFixture& fx = Fixture();
  ASSERT_GT(fx.upload.compressed.size(), 8u);
  AuditChainVerifier pristine(fx.cfg.mac_key);
  ASSERT_TRUE(pristine.Accept(fx.upload).ok());

  Xoshiro256 rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    AuditUpload corrupt = fx.upload;
    switch (rng.NextBelow(5)) {
      case 0:  // bit flip in the compressed batch
        corrupt.compressed[rng.NextBelow(corrupt.compressed.size())] ^=
            static_cast<uint8_t>(1u << rng.NextBelow(8));
        break;
      case 1:  // truncation
        corrupt.compressed.resize(rng.NextBelow(corrupt.compressed.size()));
        break;
      case 2:  // MAC tamper
        corrupt.mac[rng.NextBelow(corrupt.mac.size())] ^=
            static_cast<uint8_t>(1u << rng.NextBelow(8));
        break;
      case 3:  // chain position tamper
        corrupt.chain_seq += 1 + rng.NextBelow(1000);
        break;
      default:  // claimed-predecessor tamper
        corrupt.chain_prev[rng.NextBelow(corrupt.chain_prev.size())] ^=
            static_cast<uint8_t>(1u << rng.NextBelow(8));
        break;
    }
    AuditChainVerifier verifier(fx.cfg.mac_key);
    const Status accepted = verifier.Accept(corrupt);
    ASSERT_FALSE(accepted.ok()) << "trial " << trial;
    EXPECT_EQ(accepted.code(), StatusCode::kDataLoss) << "trial " << trial;
    // The decoder itself must never crash on corrupt bytes, whatever it returns.
    auto decoded = DecodeAuditBatch(corrupt.compressed);
    (void)decoded;
  }
}

TEST_P(CorruptionFuzz, CorruptSealedCheckpointsAreRejectedAndNeverCrash) {
  const SealedFixture& fx = Fixture();
  ASSERT_GT(fx.sealed.ciphertext.size(), 16u);

  Xoshiro256 rng(GetParam());
  for (int trial = 0; trial < 24; ++trial) {
    SealedCheckpoint corrupt = fx.sealed;
    switch (rng.NextBelow(5)) {
      case 0:  // bit flip anywhere in the ciphertext
        corrupt.ciphertext[rng.NextBelow(corrupt.ciphertext.size())] ^=
            static_cast<uint8_t>(1u << rng.NextBelow(8));
        break;
      case 1:  // truncation
        corrupt.ciphertext.resize(rng.NextBelow(corrupt.ciphertext.size()));
        break;
      case 2:  // MAC tamper
        corrupt.mac[rng.NextBelow(corrupt.mac.size())] ^=
            static_cast<uint8_t>(1u << rng.NextBelow(8));
        break;
      case 3:  // chain position tamper
        corrupt.chain_seq += 1 + rng.NextBelow(1000);
        break;
      default:  // claimed chain head tamper
        corrupt.chain_head[rng.NextBelow(corrupt.chain_head.size())] ^=
            static_cast<uint8_t>(1u << rng.NextBelow(8));
        break;
    }
    DataPlane fresh(fx.cfg);
    auto restored = fresh.Restore(corrupt);
    ASSERT_FALSE(restored.ok()) << "trial " << trial;
    EXPECT_EQ(restored.status().code(), StatusCode::kDataLoss) << "trial " << trial;
  }
  // The pristine artifact still restores: rejection above is the corruption's doing.
  DataPlane fresh(fx.cfg);
  EXPECT_TRUE(fresh.Restore(fx.sealed).ok());
}

// Seed matrix: 8 seeds by default; the nightly workflow widens it via SBT_FUZZ_SEEDS (seed
// values stay deterministic — 1..N — so a nightly failure reproduces locally by exporting the
// same count and filtering to the failing seed).
std::vector<uint64_t> FuzzSeeds() {
  size_t count = 8;
  if (const char* env = std::getenv("SBT_FUZZ_SEEDS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) {
      count = static_cast<size_t>(parsed);
    }
  }
  std::vector<uint64_t> seeds(count);
  for (size_t i = 0; i < count; ++i) {
    seeds[i] = i + 1;
  }
  return seeds;
}

INSTANTIATE_TEST_SUITE_P(SeedMatrix, CorruptionFuzz, ::testing::ValuesIn(FuzzSeeds()));

}  // namespace
}  // namespace sbt
