// Tests for the net substrate: workload generators (distribution contracts), the frame channel
// (blocking, ordering, close semantics), and the Generator's replay framing + encryption.

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <thread>

#include "src/crypto/aes128.h"
#include "src/net/channel.h"
#include "src/net/generator.h"
#include "src/net/workloads.h"

namespace sbt {
namespace {

TEST(WorkloadTest, EventTimesStayInsideTheirWindow) {
  for (WorkloadKind kind : {WorkloadKind::kSynthetic, WorkloadKind::kTaxi,
                            WorkloadKind::kIntelLab, WorkloadKind::kFilterable}) {
    WorkloadConfig cfg;
    cfg.kind = kind;
    cfg.window_ms = 500;
    cfg.events_per_window = 1000;
    WorkloadGenerator gen(cfg);
    std::vector<uint8_t> frame;
    gen.FillFrame(/*window_index=*/3, 0, 1000, &frame);
    ASSERT_EQ(frame.size(), 1000 * sizeof(Event));
    for (size_t i = 0; i < 1000; ++i) {
      Event e;
      std::memcpy(&e, frame.data() + i * sizeof(Event), sizeof(Event));
      EXPECT_GE(e.ts_ms, 1500u);
      EXPECT_LT(e.ts_ms, 2000u);
    }
  }
}

TEST(WorkloadTest, TaxiHas11kDistinctIdsMax) {
  WorkloadConfig cfg;
  cfg.kind = WorkloadKind::kTaxi;
  cfg.events_per_window = 200000;
  WorkloadGenerator gen(cfg);
  std::vector<uint8_t> frame;
  gen.FillFrame(0, 0, 200000, &frame);
  std::set<uint32_t> ids;
  for (size_t i = 0; i < 200000; ++i) {
    Event e;
    std::memcpy(&e, frame.data() + i * sizeof(Event), sizeof(Event));
    ids.insert(e.key);
  }
  EXPECT_LE(ids.size(), 11000u);
  EXPECT_GT(ids.size(), 10000u);  // nearly all taxis report at this volume
}

TEST(WorkloadTest, FilterableSelectivityIsAboutOnePercent) {
  WorkloadConfig cfg;
  cfg.kind = WorkloadKind::kFilterable;
  WorkloadGenerator gen(cfg);
  std::vector<uint8_t> frame;
  gen.FillFrame(0, 0, 100000, &frame);
  size_t selected = 0;
  for (size_t i = 0; i < 100000; ++i) {
    Event e;
    std::memcpy(&e, frame.data() + i * sizeof(Event), sizeof(Event));
    if (e.value >= 0 && e.value < 100) {
      ++selected;
    }
  }
  EXPECT_GT(selected, 700u);
  EXPECT_LT(selected, 1300u);
}

TEST(WorkloadTest, PowerGridEventsAreWellFormed) {
  WorkloadConfig cfg;
  cfg.kind = WorkloadKind::kPowerGrid;
  cfg.num_houses = 7;
  cfg.plugs_per_house = 9;
  WorkloadGenerator gen(cfg);
  EXPECT_EQ(gen.event_size(), sizeof(PowerEvent));
  std::vector<uint8_t> frame;
  gen.FillFrame(0, 0, 5000, &frame);
  for (size_t i = 0; i < 5000; ++i) {
    PowerEvent e;
    std::memcpy(&e, frame.data() + i * sizeof(PowerEvent), sizeof(PowerEvent));
    EXPECT_LT(e.house, 7u);
    EXPECT_LT(e.plug, 9u);
    EXPECT_GE(e.power, 0);
  }
}

TEST(WorkloadTest, SameSeedSameBytes) {
  WorkloadConfig cfg;
  cfg.kind = WorkloadKind::kSynthetic;
  cfg.seed = 99;
  WorkloadGenerator a(cfg);
  WorkloadGenerator b(cfg);
  std::vector<uint8_t> fa;
  std::vector<uint8_t> fb;
  a.FillFrame(0, 0, 1000, &fa);
  b.FillFrame(0, 0, 1000, &fb);
  EXPECT_EQ(fa, fb);
}

TEST(ChannelTest, FifoOrder) {
  FrameChannel ch(4);
  for (int i = 0; i < 3; ++i) {
    Frame f;
    f.ctr_offset = static_cast<uint64_t>(i);
    ASSERT_TRUE(ch.Push(std::move(f)));
  }
  for (int i = 0; i < 3; ++i) {
    auto f = ch.Pop();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->ctr_offset, static_cast<uint64_t>(i));
  }
}

TEST(ChannelTest, PopAfterCloseDrainsThenEnds) {
  FrameChannel ch(4);
  ASSERT_TRUE(ch.Push(Frame{}));
  ch.Close();
  EXPECT_TRUE(ch.Pop().has_value());
  EXPECT_FALSE(ch.Pop().has_value());
  EXPECT_FALSE(ch.Push(Frame{}));
}

TEST(ChannelTest, BlockingProducerConsumer) {
  FrameChannel ch(2);
  constexpr int kFrames = 100;
  std::thread producer([&ch] {
    for (int i = 0; i < kFrames; ++i) {
      Frame f;
      f.ctr_offset = static_cast<uint64_t>(i);
      ASSERT_TRUE(ch.Push(std::move(f)));
    }
    ch.Close();
  });
  int received = 0;
  while (auto f = ch.Pop()) {
    EXPECT_EQ(f->ctr_offset, static_cast<uint64_t>(received));
    ++received;
  }
  producer.join();
  EXPECT_EQ(received, kFrames);
}

TEST(GeneratorTest, EmitsWatermarkAfterEachWindow) {
  GeneratorConfig cfg;
  cfg.batch_events = 400;
  cfg.num_windows = 2;
  cfg.workload.events_per_window = 1000;
  cfg.workload.window_ms = 1000;
  Generator gen(cfg);

  int batches = 0;
  std::vector<EventTimeMs> watermarks;
  uint32_t max_ts_before_wm = 0;
  while (auto frame = gen.NextFrame()) {
    if (frame->is_watermark) {
      // Watermark guarantee: no earlier event may follow. Check against what we saw.
      EXPECT_GE(frame->watermark, max_ts_before_wm);
      watermarks.push_back(frame->watermark);
    } else {
      ++batches;
      for (size_t i = 0; i < frame->bytes.size(); i += sizeof(Event)) {
        Event e;
        std::memcpy(&e, frame->bytes.data() + i, sizeof(e));
        max_ts_before_wm = std::max(max_ts_before_wm, e.ts_ms);
      }
    }
  }
  EXPECT_EQ(batches, 6);  // 1000 events / 400 batch = 3 per window (400+400+200)
  ASSERT_EQ(watermarks.size(), 2u);
  EXPECT_EQ(watermarks[0], 1000u);
  EXPECT_EQ(watermarks[1], 2000u);
  EXPECT_EQ(gen.events_emitted(), 2000u);
}

TEST(GeneratorTest, EncryptedFramesDecryptWithCarriedOffsets) {
  GeneratorConfig plain_cfg;
  plain_cfg.batch_events = 300;
  plain_cfg.num_windows = 1;
  plain_cfg.workload.events_per_window = 1000;

  GeneratorConfig enc_cfg = plain_cfg;
  enc_cfg.encrypt = true;
  for (size_t i = 0; i < kAesKeySize; ++i) {
    enc_cfg.key[i] = static_cast<uint8_t>(i);
  }
  enc_cfg.nonce.fill(7);

  Generator plain(plain_cfg);
  Generator enc(enc_cfg);
  Aes128Ctr cipher(enc_cfg.key, std::span<const uint8_t>(enc_cfg.nonce.data(), 12));

  while (true) {
    auto pf = plain.NextFrame();
    auto ef = enc.NextFrame();
    ASSERT_EQ(pf.has_value(), ef.has_value());
    if (!pf.has_value()) {
      break;
    }
    if (pf->is_watermark) {
      continue;
    }
    EXPECT_NE(pf->bytes, ef->bytes);
    std::vector<uint8_t> dec = ef->bytes;
    cipher.Crypt(std::span<uint8_t>(dec.data(), dec.size()), ef->ctr_offset);
    EXPECT_EQ(dec, pf->bytes);
  }
}

TEST(GeneratorTest, RunIntoClosesChannel) {
  GeneratorConfig cfg;
  cfg.batch_events = 100;
  cfg.num_windows = 1;
  cfg.workload.events_per_window = 250;
  Generator gen(cfg);
  FrameChannel ch(64);
  gen.RunInto(&ch);
  int frames = 0;
  int watermarks = 0;
  while (auto f = ch.Pop()) {
    (f->is_watermark ? watermarks : frames) += 1;
  }
  EXPECT_EQ(frames, 3);
  EXPECT_EQ(watermarks, 1);
}

}  // namespace
}  // namespace sbt
