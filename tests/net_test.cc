// Tests for the net substrate: workload generators (distribution contracts), the frame channel
// (blocking, ordering, close semantics), and the Generator's replay framing + encryption.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>
#include <span>
#include <thread>

#include "src/crypto/aes128.h"
#include "src/crypto/session.h"
#include "src/net/channel.h"
#include "src/net/generator.h"
#include "src/net/wire.h"
#include "src/net/workloads.h"

namespace sbt {
namespace {

TEST(WorkloadTest, EventTimesStayInsideTheirWindow) {
  for (WorkloadKind kind : {WorkloadKind::kSynthetic, WorkloadKind::kTaxi,
                            WorkloadKind::kIntelLab, WorkloadKind::kFilterable}) {
    WorkloadConfig cfg;
    cfg.kind = kind;
    cfg.window_ms = 500;
    cfg.events_per_window = 1000;
    WorkloadGenerator gen(cfg);
    std::vector<uint8_t> frame;
    gen.FillFrame(/*window_index=*/3, 0, 1000, &frame);
    ASSERT_EQ(frame.size(), 1000 * sizeof(Event));
    for (size_t i = 0; i < 1000; ++i) {
      Event e;
      std::memcpy(&e, frame.data() + i * sizeof(Event), sizeof(Event));
      EXPECT_GE(e.ts_ms, 1500u);
      EXPECT_LT(e.ts_ms, 2000u);
    }
  }
}

TEST(WorkloadTest, TaxiHas11kDistinctIdsMax) {
  WorkloadConfig cfg;
  cfg.kind = WorkloadKind::kTaxi;
  cfg.events_per_window = 200000;
  WorkloadGenerator gen(cfg);
  std::vector<uint8_t> frame;
  gen.FillFrame(0, 0, 200000, &frame);
  std::set<uint32_t> ids;
  for (size_t i = 0; i < 200000; ++i) {
    Event e;
    std::memcpy(&e, frame.data() + i * sizeof(Event), sizeof(Event));
    ids.insert(e.key);
  }
  EXPECT_LE(ids.size(), 11000u);
  EXPECT_GT(ids.size(), 10000u);  // nearly all taxis report at this volume
}

TEST(WorkloadTest, FilterableSelectivityIsAboutOnePercent) {
  WorkloadConfig cfg;
  cfg.kind = WorkloadKind::kFilterable;
  WorkloadGenerator gen(cfg);
  std::vector<uint8_t> frame;
  gen.FillFrame(0, 0, 100000, &frame);
  size_t selected = 0;
  for (size_t i = 0; i < 100000; ++i) {
    Event e;
    std::memcpy(&e, frame.data() + i * sizeof(Event), sizeof(Event));
    if (e.value >= 0 && e.value < 100) {
      ++selected;
    }
  }
  EXPECT_GT(selected, 700u);
  EXPECT_LT(selected, 1300u);
}

TEST(WorkloadTest, PowerGridEventsAreWellFormed) {
  WorkloadConfig cfg;
  cfg.kind = WorkloadKind::kPowerGrid;
  cfg.num_houses = 7;
  cfg.plugs_per_house = 9;
  WorkloadGenerator gen(cfg);
  EXPECT_EQ(gen.event_size(), sizeof(PowerEvent));
  std::vector<uint8_t> frame;
  gen.FillFrame(0, 0, 5000, &frame);
  for (size_t i = 0; i < 5000; ++i) {
    PowerEvent e;
    std::memcpy(&e, frame.data() + i * sizeof(PowerEvent), sizeof(PowerEvent));
    EXPECT_LT(e.house, 7u);
    EXPECT_LT(e.plug, 9u);
    EXPECT_GE(e.power, 0);
  }
}

TEST(WorkloadTest, SameSeedSameBytes) {
  WorkloadConfig cfg;
  cfg.kind = WorkloadKind::kSynthetic;
  cfg.seed = 99;
  WorkloadGenerator a(cfg);
  WorkloadGenerator b(cfg);
  std::vector<uint8_t> fa;
  std::vector<uint8_t> fb;
  a.FillFrame(0, 0, 1000, &fa);
  b.FillFrame(0, 0, 1000, &fb);
  EXPECT_EQ(fa, fb);
}

TEST(ChannelTest, FifoOrder) {
  FrameChannel ch(4);
  for (int i = 0; i < 3; ++i) {
    Frame f;
    f.ctr_offset = static_cast<uint64_t>(i);
    ASSERT_TRUE(ch.Push(std::move(f)));
  }
  for (int i = 0; i < 3; ++i) {
    auto f = ch.Pop();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->ctr_offset, static_cast<uint64_t>(i));
  }
}

TEST(ChannelTest, PopAfterCloseDrainsThenEnds) {
  FrameChannel ch(4);
  ASSERT_TRUE(ch.Push(Frame{}));
  ch.Close();
  EXPECT_TRUE(ch.Pop().has_value());
  EXPECT_FALSE(ch.Pop().has_value());
  EXPECT_FALSE(ch.Push(Frame{}));
}

TEST(ChannelTest, BlockingProducerConsumer) {
  FrameChannel ch(2);
  constexpr int kFrames = 100;
  std::thread producer([&ch] {
    for (int i = 0; i < kFrames; ++i) {
      Frame f;
      f.ctr_offset = static_cast<uint64_t>(i);
      ASSERT_TRUE(ch.Push(std::move(f)));
    }
    ch.Close();
  });
  int received = 0;
  while (auto f = ch.Pop()) {
    EXPECT_EQ(f->ctr_offset, static_cast<uint64_t>(received));
    ++received;
  }
  producer.join();
  EXPECT_EQ(received, kFrames);
}

TEST(GeneratorTest, EmitsWatermarkAfterEachWindow) {
  GeneratorConfig cfg;
  cfg.batch_events = 400;
  cfg.num_windows = 2;
  cfg.workload.events_per_window = 1000;
  cfg.workload.window_ms = 1000;
  Generator gen(cfg);

  int batches = 0;
  std::vector<EventTimeMs> watermarks;
  uint32_t max_ts_before_wm = 0;
  while (auto frame = gen.NextFrame()) {
    if (frame->is_watermark) {
      // Watermark guarantee: no earlier event may follow. Check against what we saw.
      EXPECT_GE(frame->watermark, max_ts_before_wm);
      watermarks.push_back(frame->watermark);
    } else {
      ++batches;
      for (size_t i = 0; i < frame->bytes.size(); i += sizeof(Event)) {
        Event e;
        std::memcpy(&e, frame->bytes.data() + i, sizeof(e));
        max_ts_before_wm = std::max(max_ts_before_wm, e.ts_ms);
      }
    }
  }
  EXPECT_EQ(batches, 6);  // 1000 events / 400 batch = 3 per window (400+400+200)
  ASSERT_EQ(watermarks.size(), 2u);
  EXPECT_EQ(watermarks[0], 1000u);
  EXPECT_EQ(watermarks[1], 2000u);
  EXPECT_EQ(gen.events_emitted(), 2000u);
}

TEST(GeneratorTest, EncryptedFramesDecryptWithCarriedOffsets) {
  GeneratorConfig plain_cfg;
  plain_cfg.batch_events = 300;
  plain_cfg.num_windows = 1;
  plain_cfg.workload.events_per_window = 1000;

  GeneratorConfig enc_cfg = plain_cfg;
  enc_cfg.encrypt = true;
  for (size_t i = 0; i < kAesKeySize; ++i) {
    enc_cfg.key[i] = static_cast<uint8_t>(i);
  }
  enc_cfg.nonce.fill(7);

  Generator plain(plain_cfg);
  Generator enc(enc_cfg);
  Aes128Ctr cipher(enc_cfg.key, std::span<const uint8_t>(enc_cfg.nonce.data(), 12));

  while (true) {
    auto pf = plain.NextFrame();
    auto ef = enc.NextFrame();
    ASSERT_EQ(pf.has_value(), ef.has_value());
    if (!pf.has_value()) {
      break;
    }
    if (pf->is_watermark) {
      continue;
    }
    EXPECT_NE(pf->bytes, ef->bytes);
    std::vector<uint8_t> dec = ef->bytes;
    cipher.Crypt(std::span<uint8_t>(dec.data(), dec.size()), ef->ctr_offset);
    EXPECT_EQ(dec, pf->bytes);
  }
}

TEST(GeneratorTest, RunIntoClosesChannel) {
  GeneratorConfig cfg;
  cfg.batch_events = 100;
  cfg.num_windows = 1;
  cfg.workload.events_per_window = 250;
  Generator gen(cfg);
  FrameChannel ch(64);
  gen.RunInto(&ch);
  int frames = 0;
  int watermarks = 0;
  while (auto f = ch.Pop()) {
    (f->is_watermark ? watermarks : frames) += 1;
  }
  EXPECT_EQ(frames, 3);
  EXPECT_EQ(watermarks, 1);
}

// --- wire protocol codec (src/net/wire.h) -----------------------------------------------

AesKey TestMacKey(uint8_t fill) {
  AesKey key{};
  key.fill(fill);
  return key;
}

// Every message type survives encode -> ExtractMessage -> decode with all fields intact, and
// messages concatenated into one buffer peel off in order.
TEST(WireTest, AllMessageTypesRoundTrip) {
  const std::vector<uint8_t> payload = {0xde, 0xad, 0xbe, 0xef, 0x01, 0x02};
  SessionTag tag{};
  for (size_t i = 0; i < tag.size(); ++i) {
    tag[i] = static_cast<uint8_t>(0xa0 + i);
  }

  std::vector<uint8_t> buf;
  wire::AppendHello(&buf, {.tenant = 7, .source = 123456, .stream = 3,
                           .client_nonce = 0x1122334455667788ull});
  wire::AppendChallenge(&buf, 0x99aabbccddeeff00ull);
  wire::AppendAuth(&buf, tag);
  wire::AppendAccept(&buf, tag);
  wire::AppendReject(&buf);
  wire::AppendData(&buf, /*seq=*/42, /*ctr_offset=*/4096, payload);
  wire::AppendWatermark(&buf, /*seq=*/43, /*value=*/120000);
  wire::AppendBye(&buf, /*final=*/true);

  std::span<const uint8_t> rest(buf);
  auto next = [&rest]() {
    wire::StreamMessage msg;
    EXPECT_EQ(wire::ExtractMessage(rest, &msg), wire::ExtractResult::kMessage);
    rest = rest.subspan(msg.consumed);
    return msg;
  };

  wire::StreamMessage msg = next();
  ASSERT_EQ(msg.type, wire::MsgType::kHello);
  const auto hello = wire::DecodeHello(msg.body);
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(hello->tenant, 7u);
  EXPECT_EQ(hello->source, 123456u);
  EXPECT_EQ(hello->stream, 3u);
  EXPECT_EQ(hello->client_nonce, 0x1122334455667788ull);

  msg = next();
  ASSERT_EQ(msg.type, wire::MsgType::kChallenge);
  EXPECT_EQ(wire::DecodeChallenge(msg.body), 0x99aabbccddeeff00ull);

  msg = next();
  ASSERT_EQ(msg.type, wire::MsgType::kAuth);
  EXPECT_EQ(wire::DecodeTag(msg.body), tag);
  msg = next();
  ASSERT_EQ(msg.type, wire::MsgType::kAccept);
  EXPECT_EQ(wire::DecodeTag(msg.body), tag);
  msg = next();
  EXPECT_EQ(msg.type, wire::MsgType::kReject);

  msg = next();
  ASSERT_EQ(msg.type, wire::MsgType::kData);
  const auto data = wire::DecodeData(msg.body);
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(data->seq, 42u);
  EXPECT_EQ(data->ctr_offset, 4096u);
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), data->payload.begin(),
                         data->payload.end()));

  msg = next();
  ASSERT_EQ(msg.type, wire::MsgType::kWatermark);
  const auto wm = wire::DecodeWatermark(msg.body);
  ASSERT_TRUE(wm.has_value());
  EXPECT_EQ(wm->seq, 43u);
  EXPECT_EQ(wm->value, 120000u);

  msg = next();
  ASSERT_EQ(msg.type, wire::MsgType::kBye);
  const auto bye = wire::DecodeBye(msg.body);
  ASSERT_TRUE(bye.has_value());
  EXPECT_TRUE(bye->final);

  EXPECT_TRUE(rest.empty());
}

// Torn streams: every strict prefix of a valid message is kNeedMore (never a message, never
// an over-read), and a bogus length prefix is kMalformed immediately.
TEST(WireTest, TruncatedAndTornInputRejectedWithoutOverRead) {
  std::vector<uint8_t> buf;
  wire::AppendData(&buf, 5, 77, std::vector<uint8_t>{1, 2, 3, 4, 5, 6, 7, 8});

  for (size_t cut = 0; cut < buf.size(); ++cut) {
    wire::StreamMessage msg;
    EXPECT_EQ(wire::ExtractMessage(std::span(buf.data(), cut), &msg),
              wire::ExtractResult::kNeedMore)
        << "prefix of " << cut << " bytes";
  }
  wire::StreamMessage msg;
  ASSERT_EQ(wire::ExtractMessage(buf, &msg), wire::ExtractResult::kMessage);
  EXPECT_EQ(msg.consumed, buf.size());

  // Zero-length message: malformed (a message always carries at least the type byte).
  const std::vector<uint8_t> zero_len = {0, 0, 0, 0};
  EXPECT_EQ(wire::ExtractMessage(zero_len, &msg), wire::ExtractResult::kMalformed);
  // Length above the cap: malformed before any reassembly buffer is sized to it.
  std::vector<uint8_t> huge = {0, 0, 0, 0, 1};
  const uint32_t too_big = wire::kMaxMessageBytes + 1;
  std::memcpy(huge.data(), &too_big, sizeof(too_big));
  EXPECT_EQ(wire::ExtractMessage(huge, &msg), wire::ExtractResult::kMalformed);

  // Strict body decoders: truncated and padded bodies both fail.
  std::vector<uint8_t> good;
  wire::AppendWatermark(&good, 1, 2);
  std::span<const uint8_t> body(good.data() + wire::kLengthPrefixBytes + 1,
                                good.size() - wire::kLengthPrefixBytes - 1);
  EXPECT_TRUE(wire::DecodeWatermark(body).has_value());
  EXPECT_FALSE(wire::DecodeWatermark(body.subspan(0, body.size() - 1)).has_value());
  std::vector<uint8_t> padded(body.begin(), body.end());
  padded.push_back(0);
  EXPECT_FALSE(wire::DecodeWatermark(padded).has_value());
  EXPECT_FALSE(wire::DecodeHello(body).has_value());  // wrong layout entirely
}

// Datagram auth: round-trips under the right key; any flipped bit, a foreign tenant's key, or
// an unknown (tenant, source) claim rejects the packet.
TEST(WireTest, DgramAuthenticatesAndRejectsTampering) {
  const SessionKey key = DeriveSessionKey(TestMacKey(0x11), 1, 9, 0, 0);
  const SessionKey wrong = DeriveSessionKey(TestMacKey(0x22), 1, 9, 0, 0);
  const std::vector<uint8_t> payload = {9, 8, 7, 6};
  wire::Dgram d;
  d.tenant = 1;
  d.source = 9;
  d.stream = 0;
  d.kind = wire::DgramKind::kData;
  d.seq = 17;
  d.ctr_offset = 256;
  d.payload = payload;
  const std::vector<uint8_t> packet = wire::EncodeDgram(key, d);

  const auto key_of = [&key](uint32_t tenant, uint32_t source) -> const SessionKey* {
    return (tenant == 1 && source == 9) ? &key : nullptr;
  };
  const auto decoded = wire::DecodeDgram(packet, key_of);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->seq, 17u);
  EXPECT_EQ(decoded->ctr_offset, 256u);
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), decoded->payload.begin(),
                         decoded->payload.end()));

  for (size_t i = 0; i < packet.size(); ++i) {
    std::vector<uint8_t> tampered = packet;
    tampered[i] ^= 0x40;
    EXPECT_FALSE(wire::DecodeDgram(tampered, key_of).has_value()) << "flipped byte " << i;
  }
  const auto wrong_key_of = [&wrong](uint32_t, uint32_t) { return &wrong; };
  EXPECT_FALSE(wire::DecodeDgram(packet, wrong_key_of).has_value());
  const auto unknown_of = [](uint32_t, uint32_t) -> const SessionKey* { return nullptr; };
  EXPECT_FALSE(wire::DecodeDgram(packet, unknown_of).has_value());
  EXPECT_FALSE(wire::DecodeDgram(std::span(packet.data(), packet.size() - 1), key_of)
                   .has_value());  // truncated tag
}

// The handshake's cryptographic core: only the holder of the same tenant MAC key produces the
// transcript tags the peer expects, so a device keyed for another tenant cannot authenticate.
TEST(WireTest, HandshakeTagsBindToTenantKey) {
  const wire::Hello hello{.tenant = 2, .source = 5, .stream = 0, .client_nonce = 111};
  const uint64_t server_nonce = 222;
  const auto transcript = wire::HandshakeTranscript(hello, server_nonce);

  const SessionKey right =
      DeriveSessionKey(TestMacKey(0x33), hello.tenant, hello.source, 111, 222);
  const SessionKey wrong_tenant_key =
      DeriveSessionKey(TestMacKey(0x44), hello.tenant, hello.source, 111, 222);
  EXPECT_TRUE(SessionTagEqual(SessionMac(right, wire::kAuthLabel, transcript),
                              SessionMac(right, wire::kAuthLabel, transcript)));
  EXPECT_FALSE(SessionTagEqual(SessionMac(right, wire::kAuthLabel, transcript),
                               SessionMac(wrong_tenant_key, wire::kAuthLabel, transcript)));
  // Labels separate the two directions: a reflected client tag never passes as the server's.
  EXPECT_FALSE(SessionTagEqual(SessionMac(right, wire::kAuthLabel, transcript),
                               SessionMac(right, wire::kAcceptLabel, transcript)));
  // And the transcript binds the nonces: a replayed tag fails under a fresh server nonce.
  const auto transcript2 = wire::HandshakeTranscript(hello, server_nonce + 1);
  EXPECT_FALSE(SessionTagEqual(SessionMac(right, wire::kAuthLabel, transcript),
                               SessionMac(right, wire::kAuthLabel, transcript2)));
}

}  // namespace
}  // namespace sbt
