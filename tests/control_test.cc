// Control-plane integration tests: every benchmark pipeline runs end-to-end on every engine
// version, produces numerically correct results, and passes cloud-side audit verification.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "src/control/benchmarks.h"
#include "src/control/harness.h"
#include "src/control/lifecycle.h"
#include "src/core/submit_combiner.h"
#include "src/net/workloads.h"
#include "tests/testing/testing.h"

namespace sbt {
namespace {

using testing::RegenerateEvents;
using testing::SmallHarnessOptions;

TEST(ControlTest, WinSumProducesCorrectSumsAndVerifies) {
  HarnessOptions opts = SmallHarnessOptions();
  opts.generator.workload.kind = WorkloadKind::kIntelLab;
  const Pipeline pipeline = MakeWinSum(1000);
  const HarnessResult result = RunHarness(pipeline, opts);

  EXPECT_EQ(result.runner().task_errors, 0u);
  EXPECT_EQ(result.runner().windows_emitted, 3u);
  ASSERT_TRUE(result.verified);
  EXPECT_TRUE(result.verify.correct)
      << (result.verify.violations.empty() ? "" : result.verify.violations[0]);
  EXPECT_EQ(result.verify.windows_verified, 3u);

  // Reference sums per window.
  std::map<uint32_t, int64_t> expected;
  for (const Event& e : RegenerateEvents(opts.generator)) {
    expected[e.ts_ms / 1000] += e.value;
  }
  const DataPlaneConfig cfg = MakeEngineConfig(opts.version, opts.engine);
  ASSERT_EQ(result.window_results.size(), 3u);
  for (const WindowResult& wr : result.window_results) {
    ASSERT_EQ(wr.blobs.size(), 1u);
    const auto plain = DecryptEgressBlob(cfg, wr.blobs[0], wr.blobs[0].ctr_offset);
    ASSERT_EQ(plain.size(), sizeof(int64_t));
    int64_t sum = 0;
    std::memcpy(&sum, plain.data(), sizeof(sum));
    EXPECT_EQ(sum, expected[wr.window_index]) << "window " << wr.window_index;
  }
}

TEST(ControlTest, DistinctCountsUniqueTaxis) {
  HarnessOptions opts = SmallHarnessOptions();
  opts.generator.workload.kind = WorkloadKind::kTaxi;
  const Pipeline pipeline = MakeDistinct(1000);
  const HarnessResult result = RunHarness(pipeline, opts);

  EXPECT_EQ(result.runner().task_errors, 0u);
  ASSERT_TRUE(result.verify.correct)
      << (result.verify.violations.empty() ? "" : result.verify.violations[0]);

  std::map<uint32_t, std::set<uint32_t>> expected;
  for (const Event& e : RegenerateEvents(opts.generator)) {
    expected[e.ts_ms / 1000].insert(e.key);
  }
  const DataPlaneConfig cfg = MakeEngineConfig(opts.version, opts.engine);
  ASSERT_EQ(result.window_results.size(), 3u);
  for (const WindowResult& wr : result.window_results) {
    ASSERT_EQ(wr.blobs.size(), 1u);
    const auto plain = DecryptEgressBlob(cfg, wr.blobs[0], wr.blobs[0].ctr_offset);
    ASSERT_EQ(plain.size(), sizeof(uint64_t));
    uint64_t count = 0;
    std::memcpy(&count, plain.data(), sizeof(count));
    EXPECT_EQ(count, expected[wr.window_index].size()) << "window " << wr.window_index;
  }
}

TEST(ControlTest, TopKEmitsLargestPerKey) {
  HarnessOptions opts = SmallHarnessOptions();
  opts.generator.workload.kind = WorkloadKind::kSynthetic;
  opts.generator.workload.num_keys = 50;
  const Pipeline pipeline = MakeTopK(1000, /*k=*/3);
  const HarnessResult result = RunHarness(pipeline, opts);

  EXPECT_EQ(result.runner().task_errors, 0u);
  ASSERT_TRUE(result.verify.correct)
      << (result.verify.violations.empty() ? "" : result.verify.violations[0]);

  // Reference: top-3 values per key per window.
  std::map<uint32_t, std::map<uint32_t, std::multiset<int32_t>>> expected;
  for (const Event& e : RegenerateEvents(opts.generator)) {
    auto& top = expected[e.ts_ms / 1000][e.key];
    top.insert(e.value);
    if (top.size() > 3) {
      top.erase(top.begin());
    }
  }
  const DataPlaneConfig cfg = MakeEngineConfig(opts.version, opts.engine);
  for (const WindowResult& wr : result.window_results) {
    ASSERT_EQ(wr.blobs.size(), 1u);
    const auto plain = DecryptEgressBlob(cfg, wr.blobs[0], wr.blobs[0].ctr_offset);
    ASSERT_EQ(plain.size() % sizeof(PackedKV), 0u);
    std::map<uint32_t, std::multiset<int32_t>> got;
    for (size_t i = 0; i < plain.size(); i += sizeof(PackedKV)) {
      PackedKV kv;
      std::memcpy(&kv, plain.data() + i, sizeof(kv));
      got[UnpackKey(kv)].insert(UnpackValue(kv));
    }
    const auto& ref = expected[wr.window_index];
    ASSERT_EQ(got.size(), ref.size()) << "window " << wr.window_index;
    for (const auto& [key, values] : ref) {
      EXPECT_EQ(got[key], values) << "window " << wr.window_index << " key " << key;
    }
  }
}

TEST(ControlTest, FilterKeepsBandAndVerifies) {
  HarnessOptions opts = SmallHarnessOptions();
  opts.generator.workload.kind = WorkloadKind::kFilterable;
  const Pipeline pipeline = MakeFilter(1000, 0, 100);  // ~1% selectivity
  const HarnessResult result = RunHarness(pipeline, opts);

  EXPECT_EQ(result.runner().task_errors, 0u);
  ASSERT_TRUE(result.verify.correct)
      << (result.verify.violations.empty() ? "" : result.verify.violations[0]);

  std::map<uint32_t, size_t> expected;
  for (const Event& e : RegenerateEvents(opts.generator)) {
    if (e.value >= 0 && e.value < 100) {
      ++expected[e.ts_ms / 1000];
    }
  }
  const DataPlaneConfig cfg = MakeEngineConfig(opts.version, opts.engine);
  for (const WindowResult& wr : result.window_results) {
    ASSERT_EQ(wr.blobs.size(), 1u);
    const auto plain = DecryptEgressBlob(cfg, wr.blobs[0], wr.blobs[0].ctr_offset);
    EXPECT_EQ(plain.size() / sizeof(Event), expected[wr.window_index])
        << "window " << wr.window_index;
  }
}

TEST(ControlTest, JoinMatchesReferenceRowCount) {
  HarnessOptions opts = SmallHarnessOptions();
  opts.generator.workload.kind = WorkloadKind::kSynthetic;
  opts.generator.workload.num_keys = 2000;
  opts.generator.workload.events_per_window = 6000;  // keep cross products small
  const Pipeline pipeline = MakeJoin(1000);
  const HarnessResult result = RunHarness(pipeline, opts);

  EXPECT_EQ(result.runner().task_errors, 0u);
  ASSERT_TRUE(result.verify.correct)
      << (result.verify.violations.empty() ? "" : result.verify.violations[0]);

  // Reference: per window, count of key matches between the two streams.
  std::map<uint32_t, std::map<uint32_t, uint64_t>> left;
  std::map<uint32_t, std::map<uint32_t, uint64_t>> right;
  for (const Event& e : RegenerateEvents(opts.generator, 0)) {
    ++left[e.ts_ms / 1000][e.key];
  }
  for (const Event& e : RegenerateEvents(opts.generator, 1)) {
    ++right[e.ts_ms / 1000][e.key];
  }
  const DataPlaneConfig cfg = MakeEngineConfig(opts.version, opts.engine);
  for (const WindowResult& wr : result.window_results) {
    uint64_t expected_rows = 0;
    for (const auto& [key, ln] : left[wr.window_index]) {
      auto it = right[wr.window_index].find(key);
      if (it != right[wr.window_index].end()) {
        expected_rows += ln * it->second;
      }
    }
    ASSERT_EQ(wr.blobs.size(), 1u);
    const auto plain = DecryptEgressBlob(cfg, wr.blobs[0], wr.blobs[0].ctr_offset);
    EXPECT_EQ(plain.size() / sizeof(JoinRow), expected_rows) << "window " << wr.window_index;
  }
}

TEST(ControlTest, PowerCountsHighPowerPlugsPerHouse) {
  HarnessOptions opts = SmallHarnessOptions();
  opts.generator.workload.kind = WorkloadKind::kPowerGrid;
  opts.generator.workload.num_houses = 10;
  opts.generator.workload.plugs_per_house = 20;
  const Pipeline pipeline = MakePower(1000);
  const HarnessResult result = RunHarness(pipeline, opts);

  EXPECT_EQ(result.runner().task_errors, 0u);
  ASSERT_TRUE(result.verify.correct)
      << (result.verify.violations.empty() ? "" : result.verify.violations[0]);
  EXPECT_EQ(result.runner().windows_emitted, 3u);

  // Reference: per-plug average, keep above-mean plugs, count per house.
  GeneratorConfig copy = opts.generator;
  copy.encrypt = false;
  Generator gen(copy);
  std::map<uint32_t, std::map<uint32_t, std::pair<int64_t, int64_t>>> plug_sums;  // win->plugkey
  while (auto frame = gen.NextFrame()) {
    if (frame->is_watermark) {
      continue;
    }
    const size_t n = frame->bytes.size() / sizeof(PowerEvent);
    for (size_t i = 0; i < n; ++i) {
      PowerEvent e;
      std::memcpy(&e, frame->bytes.data() + i * sizeof(e), sizeof(e));
      auto& cell = plug_sums[e.ts_ms / 1000][(e.house << 16) | e.plug];
      cell.first += e.power;
      ++cell.second;
    }
  }
  const DataPlaneConfig cfg = MakeEngineConfig(opts.version, opts.engine);
  for (const WindowResult& wr : result.window_results) {
    const auto& plugs = plug_sums[wr.window_index];
    std::vector<std::pair<uint32_t, int64_t>> avgs;  // plugkey -> avg (in kv order)
    int64_t total = 0;
    for (const auto& [pk, cell] : plugs) {
      avgs.push_back({pk, cell.first / cell.second});
      total += cell.first / cell.second;
    }
    std::map<uint32_t, int64_t> expected;  // house -> count of above-mean plugs
    const int64_t n = static_cast<int64_t>(avgs.size());
    for (const auto& [pk, avg] : avgs) {
      if (avg * n > total) {
        ++expected[pk >> 16];
      }
    }
    ASSERT_EQ(wr.blobs.size(), 1u);
    const auto plain = DecryptEgressBlob(cfg, wr.blobs[0], wr.blobs[0].ctr_offset);
    ASSERT_EQ(plain.size() % sizeof(KeyValue), 0u);
    std::map<uint32_t, int64_t> got;
    for (size_t i = 0; i < plain.size(); i += sizeof(KeyValue)) {
      KeyValue kv;
      std::memcpy(&kv, plain.data() + i, sizeof(kv));
      got[kv.key] = kv.value;
    }
    EXPECT_EQ(got, expected) << "window " << wr.window_index;
  }
}

class EngineVersionTest : public ::testing::TestWithParam<EngineVersion> {};

TEST_P(EngineVersionTest, WinSumRunsCleanOnAllVersions) {
  HarnessOptions opts = SmallHarnessOptions(GetParam());
  opts.generator.workload.kind = WorkloadKind::kIntelLab;
  const HarnessResult result = RunHarness(MakeWinSum(1000), opts);
  EXPECT_EQ(result.runner().task_errors, 0u);
  EXPECT_EQ(result.runner().windows_emitted, 3u);
  EXPECT_TRUE(result.verify.correct)
      << (result.verify.violations.empty() ? "" : result.verify.violations[0]);
  EXPECT_GT(result.events_per_sec(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllVersions, EngineVersionTest,
                         ::testing::Values(EngineVersion::kStreamBoxTz,
                                           EngineVersion::kSbtClearIngress,
                                           EngineVersion::kSbtIoViaOs, EngineVersion::kInsecure),
                         [](const ::testing::TestParamInfo<EngineVersion>& info) {
                           std::string name(EngineVersionName(info.param));
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(ControlTest, HintsOffStillCorrectJustMoreMemory) {
  HarnessOptions opts = SmallHarnessOptions();
  opts.generator.workload.kind = WorkloadKind::kIntelLab;
  opts.engine.use_hints = false;
  opts.engine.placement = PlacementPolicy::kGenerational;
  const HarnessResult result = RunHarness(MakeWinSum(1000), opts);
  EXPECT_EQ(result.runner().task_errors, 0u);
  EXPECT_TRUE(result.verify.correct)
      << (result.verify.violations.empty() ? "" : result.verify.violations[0]);
}

TEST(ControlTest, MemoryFullyReclaimedAfterDrain) {
  HarnessOptions opts = SmallHarnessOptions();
  opts.generator.workload.kind = WorkloadKind::kIntelLab;
  DataPlaneConfig cfg = MakeEngineConfig(opts.version, opts.engine);
  DataPlane dp(cfg);
  {
    Runner runner(&dp, MakeWinSum(1000), MakeRunnerConfig(opts.version, opts.engine));
    GeneratorConfig gen_cfg = opts.generator;
    gen_cfg.encrypt = true;
    gen_cfg.key = cfg.ingress_key;
    gen_cfg.nonce = cfg.ingress_nonce;
    Generator gen(gen_cfg);
    while (auto frame = gen.NextFrame()) {
      if (frame->is_watermark) {
        ASSERT_TRUE(runner.AdvanceWatermark(frame->watermark).ok());
      } else {
        ASSERT_TRUE(runner.IngestFrame(frame->bytes, 0, frame->ctr_offset).ok());
      }
    }
    runner.Drain();
    EXPECT_EQ(runner.stats().task_errors, 0u);
  }
  // Every window closed; all uArrays should be reclaimed and all refs gone.
  EXPECT_EQ(dp.live_refs(), 0u);
  EXPECT_EQ(dp.memory_stats().committed_bytes, 0u);
}

TEST(ControlTest, WatermarkBeforeDataWindowStillEmitsLater) {
  // Watermark for window 0 arrives, then window 1 data, then its watermark: both must emit.
  HarnessOptions opts = SmallHarnessOptions();
  DataPlaneConfig cfg = MakeEngineConfig(opts.version, opts.engine);
  cfg.decrypt_ingress = false;
  DataPlane dp(cfg);
  RunnerConfig rc = MakeRunnerConfig(opts.version, opts.engine);
  Runner runner(&dp, MakeWinSum(1000), rc);

  std::vector<Event> w0(100);
  std::vector<Event> w1(100);
  for (int i = 0; i < 100; ++i) {
    w0[i] = {.ts_ms = static_cast<EventTimeMs>(i), .key = 1, .value = 1};
    w1[i] = {.ts_ms = static_cast<EventTimeMs>(1000 + i), .key = 1, .value = 2};
  }
  auto bytes = [](const std::vector<Event>& v) {
    return std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(v.data()),
                                    v.size() * sizeof(Event));
  };
  ASSERT_TRUE(runner.IngestFrame(bytes(w0)).ok());
  ASSERT_TRUE(runner.AdvanceWatermark(1000).ok());
  ASSERT_TRUE(runner.IngestFrame(bytes(w1)).ok());
  ASSERT_TRUE(runner.AdvanceWatermark(2000).ok());
  runner.Drain();
  EXPECT_EQ(runner.stats().windows_emitted, 2u);
  EXPECT_EQ(runner.stats().task_errors, 0u);
}

TEST(ControlTest, DelayMsClampsClockSkew) {
  // Clock skew (coarse test clocks, NTP steps) can put the egress timestamp before the
  // watermark's; the delay must clamp at 0 instead of underflowing into a bogus huge value.
  WindowResult wr;
  wr.watermark_time = 5000000;
  wr.egress_time = 2000000;
  EXPECT_EQ(wr.delay_ms(), 0u);
  wr.egress_time = wr.watermark_time;
  EXPECT_EQ(wr.delay_ms(), 0u);
  wr.egress_time = 5750000;
  EXPECT_EQ(wr.delay_ms(), 750u);
}

// One frame entirely inside window 0, pushed through a 4-primitive per-batch chain. Returns
// the total number of TEE entries the session paid.
uint64_t EntriesForChainRun(bool fuse_chains) {
  Pipeline pipeline("Chain4", 1000);
  pipeline.PerBatch(PrimitiveOp::kProject);
  pipeline.PerBatch(PrimitiveOp::kSort);
  pipeline.PerBatch(PrimitiveOp::kDedup);
  pipeline.PerBatch(PrimitiveOp::kCount);
  pipeline.AtWindowClose({.op = PrimitiveOp::kConcat, .input_stages = {-1}});

  DataPlane dp(testing::SmallDataPlaneConfig(/*decrypt_ingress=*/false));
  RunnerConfig rc;
  rc.knobs.worker_threads = 1;
  rc.knobs.fuse_chains = fuse_chains;
  Runner runner(&dp, pipeline, rc);
  const auto events = testing::ConstantEvents(500);
  EXPECT_TRUE(runner.IngestFrame(testing::AsBytes(events)).ok());
  EXPECT_TRUE(runner.AdvanceWatermark(1000).ok());
  runner.Drain();
  EXPECT_EQ(runner.stats().task_errors, 0u);
  EXPECT_EQ(runner.stats().windows_emitted, 1u);
  const uint64_t entries = dp.switch_stats().entries;  // before FlushAudit's own entry

  std::vector<AuditRecord> records;
  dp.FlushAudit(&records);
  CloudVerifier verifier(pipeline.ToVerifierSpec());
  const auto report = verifier.Verify(records);
  EXPECT_TRUE(report.correct) << (report.violations.empty() ? "" : report.violations[0]);
  return entries;
}

TEST(ControlTest, FusedChainsCrossTheBoundaryOncePerSegment) {
  // Unfused: ingest + segment + 4 chain invokes + watermark + close + egress = 9 entries.
  // Fused: the 4-step chain collapses to ONE submission (and the close stage stays one),
  // so the per-segment chain cost drops from 4 entries to 1: 6 entries total.
  const uint64_t unfused = EntriesForChainRun(false);
  const uint64_t fused = EntriesForChainRun(true);
  EXPECT_EQ(unfused, 9u);
  EXPECT_EQ(fused, 6u);
  EXPECT_EQ(unfused - fused, 3u) << "a 4-primitive chain must pay 1 switch, not 4";
}

TEST(ControlTest, ConcurrentlyReadyChainsCombineIntoOneGateEntry) {
  // The combining invariant, pinned deterministically: N chains ready at the same instant on
  // one engine cross the boundary as exactly ONE world switch. Hold() keeps every submitter
  // announced-but-waiting until the full ready set is queued; Release() lets one of them drain
  // it all as a single batch under a single session.
  constexpr int kChains = 4;
  DataPlane dp(testing::SmallDataPlaneConfig(/*decrypt_ingress=*/false));
  const auto events = testing::ConstantEvents(64);

  std::vector<OpaqueRef> heads;
  for (int i = 0; i < kChains; ++i) {
    auto info =
        dp.IngestBatch(testing::AsBytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
    ASSERT_TRUE(info.ok());
    heads.push_back(info->ref);
  }

  SubmitCombiner combiner;
  combiner.Hold();
  std::vector<ExecTicket> tickets;
  std::vector<CmdBuffer> buffers(kChains);
  for (int i = 0; i < kChains; ++i) {
    tickets.push_back(dp.OpenTicket(1));
    buffers[i].Push(
        CmdBuffer::Entry{PrimitiveOp::kProject, {heads[i]}, {}, HintRequest::None()});
  }

  const uint64_t entries_before = dp.switch_stats().entries;
  std::atomic<int> failures{0};
  std::vector<std::thread> submitters;
  for (int i = 0; i < kChains; ++i) {
    submitters.emplace_back([&, i] {
      auto resp = combiner.Apply(&dp, buffers[i], &tickets[i], /*retire_ticket=*/true);
      if (!resp.ok() || resp->outputs[0].empty() || resp->outputs[0][0].ref == 0) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  while (combiner.queued() < kChains) {
    std::this_thread::yield();
  }
  combiner.Release();
  for (std::thread& t : submitters) {
    t.join();
  }

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(dp.switch_stats().entries - entries_before, 1u)
      << kChains << " concurrently-ready chains must share one world switch";
  EXPECT_EQ(dp.switch_stats().combined_entries, 1u);
  EXPECT_EQ(dp.switch_stats().combined_chains, static_cast<uint64_t>(kChains));
  const SubmitCombiner::Stats cs = combiner.stats();
  EXPECT_EQ(cs.batches, 1u);
  EXPECT_EQ(cs.combined_batches, 1u);
  EXPECT_EQ(cs.chains, static_cast<uint64_t>(kChains));
  EXPECT_EQ(cs.max_batch, static_cast<uint64_t>(kChains));
  EXPECT_EQ(dp.open_tickets(), 0u) << "the combiner retires tickets on submitters' behalf";
}

class ChainFailureTest : public ::testing::TestWithParam<bool> {};

TEST_P(ChainFailureTest, FailedChainDoesNotWedgeItsWindow) {
  // A chain that fails mid-way (here: Average rejects the PackedKV elem size, deterministic in
  // both boundary modes) must still count down pending_chains: the window closes with the
  // contributions that arrived, the error is recorded, and the runner stays checkpointable —
  // one transient failure must not wedge the engine forever.
  Pipeline pipeline("BadChain", 1000);
  pipeline.PerBatch(PrimitiveOp::kProject);
  pipeline.PerBatch(PrimitiveOp::kAverage);  // wrong input type: always fails
  pipeline.AtWindowClose({.op = PrimitiveOp::kConcat, .input_stages = {-1}});

  DataPlane dp(testing::SmallDataPlaneConfig(/*decrypt_ingress=*/false));
  RunnerConfig rc;
  rc.knobs.worker_threads = 1;
  rc.knobs.fuse_chains = GetParam();
  Runner runner(&dp, pipeline, rc);
  const auto events = testing::ConstantEvents(200);
  ASSERT_TRUE(runner.IngestFrame(testing::AsBytes(events)).ok());
  ASSERT_TRUE(runner.AdvanceWatermark(1000).ok());
  runner.Drain();

  EXPECT_GE(runner.stats().task_errors, 1u);
  EXPECT_EQ(runner.stats().windows_emitted, 1u) << "window must close despite the failed chain";
  EXPECT_TRUE(EngineLifecycle(&dp, &runner).Checkpoint({}, nullptr).ok())
      << "no pending chains may linger";
  EXPECT_EQ(dp.live_refs(), 0u) << "a failed chain must not pin refs (or pool memory) forever";
}

INSTANTIATE_TEST_SUITE_P(BothBoundaryModes, ChainFailureTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Fused" : "PerInvoke";
                         });

TEST(ControlTest, PipelineExportsMatchingVerifierSpec) {
  const Pipeline p = MakeDistinct(500);
  const VerifierPipelineSpec spec = p.ToVerifierSpec();
  EXPECT_EQ(spec.window_size_ms, 500u);
  ASSERT_EQ(spec.per_batch_chain.size(), 2u);
  EXPECT_EQ(spec.per_batch_chain[0], PrimitiveOp::kProject);
  EXPECT_EQ(spec.per_batch_chain[1], PrimitiveOp::kSort);
  ASSERT_EQ(spec.per_window_stages.size(), 3u);
  EXPECT_EQ(spec.per_window_stages[0].op, PrimitiveOp::kMergeN);
  EXPECT_EQ(spec.per_window_stages[2].op, PrimitiveOp::kCount);
}

// The shared execution knobs are declared once (src/core/exec_knobs.h) and flow through one
// propagation point (ApplyExecutionKnobs): a knob set at the very top — EngineOptions — is
// observable at the very bottom, on the live DataPlane's and Runner's own configs, with no
// hand-copied per-layer field anywhere on the way down.
TEST(ControlTest, ExecutionKnobsSetAtTheTopAreObservedAtTheBottom) {
  EngineOptions opts;
  opts.secure_pool_mb = 8;
  opts.knobs.worker_threads = 3;
  opts.knobs.fuse_chains = false;
  opts.knobs.combine_submissions = false;
  opts.knobs.lockfree_retire = false;

  const DataPlaneConfig dp_cfg = MakeEngineConfig(EngineVersion::kSbtClearIngress, opts);
  const RunnerConfig rc = MakeRunnerConfig(EngineVersion::kSbtClearIngress, opts);
  DataPlane dp(dp_cfg);
  Runner runner(&dp, MakeWinSum(1000), rc);

  EXPECT_EQ(dp.config().knobs.worker_threads, 3);
  EXPECT_FALSE(dp.config().knobs.fuse_chains);
  EXPECT_FALSE(dp.config().knobs.combine_submissions);
  EXPECT_FALSE(dp.config().knobs.lockfree_retire);
  EXPECT_EQ(runner.config().knobs.worker_threads, 3);
  EXPECT_FALSE(runner.config().knobs.fuse_chains);
  EXPECT_FALSE(runner.config().knobs.combine_submissions);
  EXPECT_FALSE(runner.config().knobs.lockfree_retire);

  // Flipping one knob at the top reaches both layers; the others are untouched.
  opts.knobs.lockfree_retire = true;
  EXPECT_TRUE(MakeEngineConfig(EngineVersion::kSbtClearIngress, opts).knobs.lockfree_retire);
  EXPECT_TRUE(MakeRunnerConfig(EngineVersion::kSbtClearIngress, opts).knobs.lockfree_retire);
  EXPECT_FALSE(MakeRunnerConfig(EngineVersion::kSbtClearIngress, opts).knobs.fuse_chains);
  runner.Drain();
}

}  // namespace
}  // namespace sbt
