// Data-plane boundary tests: opaque-reference validation, ingest paths, decryption, egress
// encrypt+sign, audit emission, and the full ingest->compute->egress->verify integration loop.

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "src/attest/verifier.h"
#include "src/common/rng.h"
#include "src/core/data_plane.h"
#include "src/crypto/aes128.h"
#include "tests/testing/testing.h"

namespace sbt {
namespace {

using testing::AsBytes;
using testing::MakeEvents;

DataPlaneConfig TestConfig(bool decrypt = false) {
  return testing::SmallDataPlaneConfig(decrypt);
}

TEST(DataPlaneTest, IngestReturnsOpaqueRef) {
  DataPlane dp(TestConfig());
  const auto events = MakeEvents(1000);
  auto info = dp.IngestBatch(AsBytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
  ASSERT_TRUE(info.ok());
  EXPECT_NE(info->ref, 0u);
  EXPECT_EQ(info->elems, 1000u);
  EXPECT_EQ(dp.live_refs(), 1u);
}

TEST(DataPlaneTest, RejectsMisalignedFrame) {
  DataPlane dp(TestConfig());
  std::vector<uint8_t> junk(13, 0);
  EXPECT_EQ(dp.IngestBatch(junk, sizeof(Event), 0, IngestPath::kTrustedIo).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DataPlaneTest, FabricatedRefsAreRejected) {
  DataPlane dp(TestConfig());
  const auto events = MakeEvents(100);
  auto info = dp.IngestBatch(AsBytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
  ASSERT_TRUE(info.ok());

  Xoshiro256 rng(1234);
  for (int i = 0; i < 1000; ++i) {
    InvokeRequest req;
    req.op = PrimitiveOp::kCount;
    req.inputs = {rng.Next()};
    EXPECT_EQ(dp.Invoke(req).status().code(), StatusCode::kNotFound);
  }
  // The real ref still works afterwards.
  InvokeRequest req;
  req.op = PrimitiveOp::kCount;
  req.inputs = {info->ref};
  EXPECT_TRUE(dp.Invoke(req).ok());
}

TEST(DataPlaneTest, StaleRefIsRejectedAfterConsumption) {
  DataPlane dp(TestConfig());
  const auto events = MakeEvents(100);
  auto info = dp.IngestBatch(AsBytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
  ASSERT_TRUE(info.ok());

  InvokeRequest req;
  req.op = PrimitiveOp::kCount;
  req.inputs = {info->ref};
  ASSERT_TRUE(dp.Invoke(req).ok());  // consumes (retires) the input
  EXPECT_EQ(dp.Invoke(req).status().code(), StatusCode::kNotFound);
}

TEST(DataPlaneTest, DecryptIngressRecoversPlaintext) {
  DataPlaneConfig cfg = TestConfig(/*decrypt=*/true);
  DataPlane dp(cfg);

  const auto events = MakeEvents(500);
  // Source-side encryption with the shared key (what a sensor would do).
  std::vector<uint8_t> frame(AsBytes(events).begin(), AsBytes(events).end());
  Aes128Ctr source(cfg.ingress_key, std::span<const uint8_t>(cfg.ingress_nonce.data(), 12));
  source.Crypt(std::span<uint8_t>(frame.data(), frame.size()), /*offset=*/4096);

  auto info = dp.IngestBatch(frame, sizeof(Event), 0, IngestPath::kTrustedIo, /*ctr_offset=*/4096);
  ASSERT_TRUE(info.ok());

  // Sum of values must match the plaintext sum (decryption succeeded inside the TEE).
  int64_t expected = 0;
  for (const Event& e : events) {
    expected += e.value;
  }
  InvokeRequest req;
  req.op = PrimitiveOp::kSum;
  req.inputs = {info->ref};
  auto sum = dp.Invoke(req);
  ASSERT_TRUE(sum.ok());
  auto blob = dp.Egress(sum->outputs[0].ref);
  ASSERT_TRUE(blob.ok());
  // Decrypt the egress blob like the cloud consumer would.
  Aes128Ctr egress(cfg.egress_key, std::span<const uint8_t>(cfg.egress_nonce.data(), 12));
  std::vector<uint8_t> plain = blob->ciphertext;
  egress.Crypt(std::span<uint8_t>(plain.data(), plain.size()), 0);
  int64_t got = 0;
  std::memcpy(&got, plain.data(), sizeof(got));
  EXPECT_EQ(got, expected);
}

TEST(DataPlaneTest, EgressIsEncryptedAndSigned) {
  DataPlaneConfig cfg = TestConfig();
  DataPlane dp(cfg);
  const auto events = MakeEvents(100);
  auto info = dp.IngestBatch(AsBytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
  ASSERT_TRUE(info.ok());

  auto blob = dp.Egress(info->ref);
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(blob->ciphertext.size(), events.size() * sizeof(Event));
  // Ciphertext differs from plaintext.
  EXPECT_NE(0, std::memcmp(blob->ciphertext.data(), events.data(), blob->ciphertext.size()));
  // MAC verifies with the shared key and fails after tampering.
  const auto mac = HmacSha256(
      std::span<const uint8_t>(cfg.mac_key.data(), cfg.mac_key.size()),
      std::span<const uint8_t>(blob->ciphertext.data(), blob->ciphertext.size()));
  EXPECT_TRUE(DigestEqual(mac, blob->mac));
  blob->ciphertext[0] ^= 1;
  const auto mac2 = HmacSha256(
      std::span<const uint8_t>(cfg.mac_key.data(), cfg.mac_key.size()),
      std::span<const uint8_t>(blob->ciphertext.data(), blob->ciphertext.size()));
  EXPECT_FALSE(DigestEqual(mac2, blob->mac));
  // The reference was consumed.
  EXPECT_EQ(dp.live_refs(), 0u);
}

TEST(DataPlaneTest, IoViaOsMatchesTrustedIoResults) {
  DataPlane dp(TestConfig());
  const auto events = MakeEvents(1000);
  auto a = dp.IngestBatch(AsBytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
  auto b = dp.IngestBatch(AsBytes(events), sizeof(Event), 0, IngestPath::kViaOs);
  ASSERT_TRUE(a.ok() && b.ok());
  InvokeRequest req;
  req.op = PrimitiveOp::kSum;
  req.inputs = {a->ref};
  auto sa = dp.Invoke(req);
  req.inputs = {b->ref};
  auto sb = dp.Invoke(req);
  ASSERT_TRUE(sa.ok() && sb.ok());
  auto ea = dp.Egress(sa->outputs[0].ref);
  auto eb = dp.Egress(sb->outputs[0].ref);
  ASSERT_TRUE(ea.ok() && eb.ok());
  EXPECT_EQ(ea->elems, eb->elems);
}

TEST(DataPlaneTest, SegmentEmitsWindowAnnotations) {
  DataPlane dp(TestConfig());
  const auto events = MakeEvents(1000);  // spans windows 0 and 1
  auto info = dp.IngestBatch(AsBytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
  ASSERT_TRUE(info.ok());

  InvokeRequest req;
  req.op = PrimitiveOp::kSegment;
  req.inputs = {info->ref};
  req.params.window_size_ms = 1000;
  auto resp = dp.Invoke(req);
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->outputs.size(), 2u);
  EXPECT_EQ(resp->outputs[0].win_no, 0u);
  EXPECT_EQ(resp->outputs[1].win_no, 1u);
  EXPECT_EQ(resp->outputs[0].elems + resp->outputs[1].elems, events.size());
}

TEST(DataPlaneTest, RetireInputsFalseKeepsInputsAlive) {
  DataPlane dp(TestConfig());
  const auto events = MakeEvents(100);
  auto info = dp.IngestBatch(AsBytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
  ASSERT_TRUE(info.ok());

  InvokeRequest req;
  req.op = PrimitiveOp::kCount;
  req.inputs = {info->ref};
  req.retire_inputs = false;
  ASSERT_TRUE(dp.Invoke(req).ok());
  ASSERT_TRUE(dp.Invoke(req).ok());  // still valid
  EXPECT_TRUE(dp.Release(info->ref).ok());
  EXPECT_EQ(dp.Invoke(req).status().code(), StatusCode::kNotFound);
}

TEST(DataPlaneTest, WorldSwitchAccounting) {
  DataPlaneConfig cfg = TestConfig();
  cfg.switch_cost = WorldSwitchConfig{.entry_cycles = 1000, .exit_cycles = 1000};
  DataPlane dp(cfg);
  const auto events = MakeEvents(10);
  ASSERT_TRUE(dp.IngestBatch(AsBytes(events), sizeof(Event), 0, IngestPath::kTrustedIo).ok());
  ASSERT_TRUE(dp.IngestWatermark(1000).ok());
  EXPECT_EQ(dp.switch_stats().entries, 2u);
  EXPECT_EQ(dp.switch_stats().burned_cycles, 4000u);
}

TEST(DataPlaneTest, AuditRecordsMatchExecution) {
  DataPlane dp(TestConfig());
  const auto events = MakeEvents(200);
  auto info = dp.IngestBatch(AsBytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
  ASSERT_TRUE(info.ok());
  ASSERT_TRUE(dp.IngestWatermark(2000).ok());

  InvokeRequest req;
  req.op = PrimitiveOp::kProject;
  req.inputs = {info->ref};
  auto proj = dp.Invoke(req);
  ASSERT_TRUE(proj.ok());
  req.op = PrimitiveOp::kSort;
  req.inputs = {proj->outputs[0].ref};
  auto sorted = dp.Invoke(req);
  ASSERT_TRUE(sorted.ok());
  ASSERT_TRUE(dp.Egress(sorted->outputs[0].ref).ok());

  std::vector<AuditRecord> records;
  const AuditUpload upload = dp.FlushAudit(&records);
  ASSERT_EQ(records.size(), 5u);
  EXPECT_EQ(records[0].op, PrimitiveOp::kIngress);
  EXPECT_EQ(records[1].op, PrimitiveOp::kWatermark);
  EXPECT_EQ(records[1].watermark, 2000u);
  EXPECT_EQ(records[2].op, PrimitiveOp::kProject);
  EXPECT_EQ(records[3].op, PrimitiveOp::kSort);
  EXPECT_EQ(records[4].op, PrimitiveOp::kEgress);
  // Dataflow chains: ingress output -> project input -> project output -> sort input -> egress.
  EXPECT_EQ(records[0].outputs[0], records[2].inputs[0]);
  EXPECT_EQ(records[2].outputs[0], records[3].inputs[0]);
  EXPECT_EQ(records[3].outputs[0], records[4].inputs[0]);

  // The compressed upload decodes to the same records and its MAC verifies.
  auto decoded = DecodeAuditBatch(upload.compressed);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, records);
  EXPECT_EQ(upload.record_count, 5u);

  // Flushing again yields nothing.
  std::vector<AuditRecord> empty;
  dp.FlushAudit(&empty);
  EXPECT_TRUE(empty.empty());
}

TEST(DataPlaneTest, HintsAreRecordedForAudit) {
  DataPlane dp(TestConfig());
  const auto events = MakeEvents(100);
  auto a = dp.IngestBatch(AsBytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
  ASSERT_TRUE(a.ok());

  InvokeRequest req;
  req.op = PrimitiveOp::kProject;
  req.inputs = {a->ref};
  req.hint = HintRequest::Parallel(3);
  ASSERT_TRUE(dp.Invoke(req).ok());

  std::vector<AuditRecord> records;
  dp.FlushAudit(&records);
  ASSERT_EQ(records.size(), 2u);
  ASSERT_EQ(records[1].hints.size(), 1u);
  EXPECT_EQ(records[1].hints[0].kind(), 2u);
  EXPECT_EQ(records[1].hints[0].payload(), 3u);
}

TEST(DataPlaneTest, BackpressureSignalsOnHighUtilization) {
  DataPlaneConfig cfg = TestConfig();
  cfg.partition.secure_dram_bytes = 4u << 20;
  cfg.partition.group_reserve_bytes = 4u << 20;
  cfg.backpressure_threshold = 0.5;
  DataPlane dp(cfg);
  EXPECT_FALSE(dp.ShouldBackpressure());
  const auto events = MakeEvents(200000);  // ~2.4MB of 4MB pool
  auto info = dp.IngestBatch(AsBytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(dp.ShouldBackpressure());
  ASSERT_TRUE(dp.Release(info->ref).ok());
  EXPECT_FALSE(dp.ShouldBackpressure());
}

TEST(DataPlaneTest, ConcurrentInvokesAreSafe) {
  DataPlane dp(TestConfig());
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&dp, &failures, t] {
      const auto events = MakeEvents(5000, /*keys=*/16);
      for (int i = 0; i < 10; ++i) {
        auto info = dp.IngestBatch(AsBytes(events), sizeof(Event),
                                   static_cast<uint16_t>(t % 4), IngestPath::kTrustedIo);
        if (!info.ok()) {
          ++failures;
          return;
        }
        InvokeRequest req;
        req.op = PrimitiveOp::kProject;
        req.inputs = {info->ref};
        req.hint = HintRequest::Parallel(static_cast<uint32_t>(t));
        auto proj = dp.Invoke(req);
        if (!proj.ok()) {
          ++failures;
          return;
        }
        req.op = PrimitiveOp::kSort;
        req.inputs = {proj->outputs[0].ref};
        auto sorted = dp.Invoke(req);
        if (!sorted.ok()) {
          ++failures;
          return;
        }
        if (!dp.Egress(sorted->outputs[0].ref).ok()) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(dp.live_refs(), 0u);
  EXPECT_EQ(dp.memory_stats().committed_bytes, 0u);
}

TEST(DataPlaneTest, EndToEndAuditVerifies) {
  // Full loop: ingest 2 batches + watermark, run the WinSum-style pipeline, egress, then verify
  // the audit stream against the matching declaration.
  DataPlane dp(TestConfig());
  const uint32_t kWindowMs = 1000;

  std::vector<OpaqueRef> window0_contribs;
  for (int b = 0; b < 2; ++b) {
    std::vector<Event> events(1000);
    for (size_t i = 0; i < events.size(); ++i) {
      events[i] = {.ts_ms = static_cast<EventTimeMs>(i % kWindowMs), .key = 1,
                   .value = static_cast<int32_t>(i)};
    }
    auto info = dp.IngestBatch(AsBytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
    ASSERT_TRUE(info.ok());
    InvokeRequest seg;
    seg.op = PrimitiveOp::kSegment;
    seg.inputs = {info->ref};
    seg.params.window_size_ms = kWindowMs;
    auto segs = dp.Invoke(seg);
    ASSERT_TRUE(segs.ok());
    for (const OutputInfo& out : segs->outputs) {
      InvokeRequest sum;
      sum.op = PrimitiveOp::kSum;
      sum.inputs = {out.ref};
      auto s = dp.Invoke(sum);
      ASSERT_TRUE(s.ok());
      window0_contribs.push_back(s->outputs[0].ref);
    }
  }
  ASSERT_TRUE(dp.IngestWatermark(kWindowMs).ok());

  InvokeRequest concat;
  concat.op = PrimitiveOp::kConcat;
  concat.inputs = window0_contribs;
  auto merged = dp.Invoke(concat);
  ASSERT_TRUE(merged.ok());
  InvokeRequest total;
  total.op = PrimitiveOp::kSum;
  total.inputs = {merged->outputs[0].ref};
  auto result = dp.Invoke(total);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(dp.Egress(result->outputs[0].ref).ok());

  std::vector<AuditRecord> records;
  dp.FlushAudit(&records);

  VerifierPipelineSpec spec;
  spec.window_size_ms = kWindowMs;
  spec.per_batch_chain = {PrimitiveOp::kSum};
  spec.per_window_stages = {
      WindowStage{.op = PrimitiveOp::kConcat, .input_stages = {-1}},
      WindowStage{.op = PrimitiveOp::kSum, .input_stages = {0}},
  };
  CloudVerifier verifier(spec);
  const auto report = verifier.Verify(records);
  EXPECT_TRUE(report.correct) << (report.violations.empty() ? "" : report.violations[0]);
  EXPECT_EQ(report.windows_verified, 1u);
  EXPECT_EQ(report.freshness.size(), 1u);
}

// --- fused command buffers (src/core/cmd_buffer.h, DataPlane::Submit) -------------------

// A 4-step chain over one ingested batch: Project -> Sort -> Dedup -> Count.
CmdBuffer FourStepChain(OpaqueRef head) {
  CmdBuffer buffer;
  OpaqueRef cur = buffer.Push({.op = PrimitiveOp::kProject, .inputs = {head}});
  cur = buffer.Push({.op = PrimitiveOp::kSort, .inputs = {cur}});
  cur = buffer.Push({.op = PrimitiveOp::kDedup, .inputs = {cur}});
  buffer.Push({.op = PrimitiveOp::kCount, .inputs = {cur}});
  return buffer;
}

TEST(CmdBufferTest, FusedChainRunsUnderOneWorldSwitchEntry) {
  DataPlane dp(TestConfig());
  const auto events = MakeEvents(1000);
  auto info = dp.IngestBatch(AsBytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
  ASSERT_TRUE(info.ok());
  dp.ResetCycleStats();

  auto resp = dp.Submit(FourStepChain(info->ref));
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();

  // The whole 4-primitive chain crossed the boundary once, and the session amortized 4 ops.
  EXPECT_EQ(dp.switch_stats().entries, 1u);
  EXPECT_EQ(dp.switch_stats().annotated_ops, 4u);
  EXPECT_DOUBLE_EQ(dp.switch_stats().ops_per_entry(), 4.0);

  // Intermediates were consumed inside the TEE and never materialized as table refs; only the
  // chain's tail survives, and it is an ordinary ref (usable by Egress).
  ASSERT_EQ(resp->outputs.size(), 4u);
  for (size_t i = 0; i + 1 < resp->outputs.size(); ++i) {
    ASSERT_EQ(resp->outputs[i].size(), 1u);
    EXPECT_EQ(resp->outputs[i][0].ref, 0u) << "intermediate " << i << " leaked a table ref";
    EXPECT_GT(resp->outputs[i][0].elems, 0u);
  }
  const OutputInfo& tail = resp->outputs.back()[0];
  EXPECT_NE(tail.ref, 0u);
  EXPECT_EQ(tail.elems, 1u);  // Count emits one scalar
  EXPECT_EQ(dp.live_refs(), 1u);
  EXPECT_TRUE(dp.Egress(tail.ref).ok());
}

TEST(CmdBufferTest, SlotRefsAreRejectedOutsideTheirBuffer) {
  DataPlane dp(TestConfig());
  const auto events = MakeEvents(100);
  auto info = dp.IngestBatch(AsBytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
  ASSERT_TRUE(info.ok());

  // Raw submission of a slot-tagged ref at any boundary entry is rejected before the table is
  // consulted — it cannot alias a live array.
  InvokeRequest req;
  req.op = PrimitiveOp::kCount;
  req.inputs = {MakeSlotRef(0)};
  EXPECT_EQ(dp.Invoke(req).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(dp.Egress(MakeSlotRef(1)).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(dp.Release(MakeSlotRef(2, 3)).code(), StatusCode::kInvalidArgument);

  // Forward-pointing (forged) slot refs fail before any primitive runs.
  CmdBuffer forward;
  forward.Push({.op = PrimitiveOp::kCount, .inputs = {MakeSlotRef(5)}});
  EXPECT_EQ(dp.Submit(forward).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(dp.live_refs(), 1u) << "nothing executed, the ingested ref must survive";

  // An out-of-range output index on an otherwise valid backward slot also fails; the prefix
  // before the bad command has executed (and consumed its input), like an unfused prefix would.
  CmdBuffer bad_output;
  bad_output.Push({.op = PrimitiveOp::kProject, .inputs = {info->ref}});
  bad_output.Push({.op = PrimitiveOp::kSort, .inputs = {MakeSlotRef(0, 7)}});
  EXPECT_EQ(dp.Submit(bad_output).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(dp.live_refs(), 0u) << "the prefix consumed the ingested ref";

  // A consumed slot cannot be referenced twice.
  auto info2 = dp.IngestBatch(AsBytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
  ASSERT_TRUE(info2.ok());
  CmdBuffer double_use;
  const OpaqueRef projected = double_use.Push({.op = PrimitiveOp::kProject,
                                               .inputs = {info2->ref}});
  double_use.Push({.op = PrimitiveOp::kSort, .inputs = {projected}});
  double_use.Push({.op = PrimitiveOp::kSort, .inputs = {projected}});
  EXPECT_EQ(dp.Submit(double_use).status().code(), StatusCode::kNotFound);
}

TEST(CmdBufferTest, EmptyBufferIsRejected) {
  DataPlane dp(TestConfig());
  EXPECT_EQ(dp.Submit(CmdBuffer{}).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(dp.switch_stats().entries, 0u) << "no world switch paid for a rejected buffer";
}

TEST(CmdBufferTest, WorldSwitchFaultMidSubmitRetriesAndChainCompletes) {
  DataPlane dp(TestConfig());
  const auto events = MakeEvents(1000);
  auto info = dp.IngestBatch(AsBytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
  ASSERT_TRUE(info.ok());

  // The submission's single entry faults twice and is re-issued; the chain still runs exactly
  // once (audit would show duplicates otherwise).
  testing::ScopedFailPoint fp("world_switch.fault",
                              testing::ScopedFailPoint::Counted(/*skip=*/0, /*fail=*/2));
  dp.ResetCycleStats();
  auto resp = dp.Submit(FourStepChain(info->ref));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(dp.switch_stats().entries, 1u);
  EXPECT_EQ(dp.switch_stats().faults, 2u);
  EXPECT_EQ(dp.live_refs(), 1u);
}

TEST(CmdBufferTest, AllocFailureAtChainHeadLeavesInputsLive) {
  DataPlane dp(TestConfig());
  const auto events = MakeEvents(1000);
  auto info = dp.IngestBatch(AsBytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
  ASSERT_TRUE(info.ok());

  {
    // Every secure-frame allocation fails: command 0 dies before retiring anything.
    testing::ScopedFailPoint fp("secure_world.alloc_frame",
                                testing::ScopedFailPoint::Counted(/*skip=*/0, /*fail=*/1,
                                                                  /*period=*/1));
    auto resp = dp.Submit(FourStepChain(info->ref));
    ASSERT_FALSE(resp.ok());
    EXPECT_EQ(resp.status().code(), StatusCode::kResourceExhausted);
  }
  // The input ref survived the failed chain; disarmed, the same buffer runs to completion.
  EXPECT_EQ(dp.live_refs(), 1u);
  auto retry = dp.Submit(FourStepChain(info->ref));
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(dp.live_refs(), 1u);
}

TEST(CmdBufferTest, AllocFailureMidChainLeavesDataPlaneConsistent) {
  // Probe how many frame allocations the first command (Project) needs, so the fault can be
  // scheduled to strike a *later* command deterministically.
  uint64_t project_allocs = 0;
  {
    DataPlane dp(TestConfig());
    const auto events = MakeEvents(1000);
    auto info = dp.IngestBatch(AsBytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
    ASSERT_TRUE(info.ok());
    testing::ScopedFailPoint fp("secure_world.alloc_frame",
                                testing::ScopedFailPoint::Counted(/*skip=*/1u << 30));
    CmdBuffer project_only;
    project_only.Push({.op = PrimitiveOp::kProject, .inputs = {info->ref}});
    ASSERT_TRUE(dp.Submit(project_only).ok());
    project_allocs = fp.hits();
    ASSERT_GT(project_allocs, 0u);
  }

  DataPlane dp(TestConfig());
  const auto events = MakeEvents(1000);
  auto info = dp.IngestBatch(AsBytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
  ASSERT_TRUE(info.ok());
  {
    testing::ScopedFailPoint fp(
        "secure_world.alloc_frame",
        testing::ScopedFailPoint::Counted(/*skip=*/project_allocs, /*fail=*/1u << 30));
    auto resp = dp.Submit(FourStepChain(info->ref));
    ASSERT_FALSE(resp.ok());
    EXPECT_EQ(resp.status().code(), StatusCode::kResourceExhausted);
  }
  // The prefix executed and consumed the ingested ref (exactly like an unfused prefix); the
  // aborted chain materialized no table refs and its intermediates were reclaimed, so the data
  // plane keeps working: a fresh batch runs the same chain end to end.
  EXPECT_EQ(dp.live_refs(), 0u);
  auto info2 = dp.IngestBatch(AsBytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
  ASSERT_TRUE(info2.ok());
  auto retry = dp.Submit(FourStepChain(info2->ref));
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_TRUE(dp.Egress(retry->outputs.back()[0].ref).ok());
}

TEST(CmdBufferTest, CheckpointIsRefusedWhileAChainIsInFlight) {
  // A slow boundary (expensive entry burn) holds the Submit inside the TEE long enough for the
  // main thread to observe it mid-flight; Checkpoint must refuse — an in-flight buffer is
  // atomic, it can never be split by a seal.
  DataPlaneConfig cfg = TestConfig();
  cfg.switch_cost = WorldSwitchConfig{.entry_cycles = 400000000, .exit_cycles = 0};
  DataPlane dp(cfg);
  const auto events = MakeEvents(200);
  auto info = dp.IngestBatch(AsBytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
  ASSERT_TRUE(info.ok());

  std::thread submitter([&dp, head = info->ref] {
    auto resp = dp.Submit(FourStepChain(head));
    EXPECT_TRUE(resp.ok());
  });
  while (dp.inflight_chains() == 0) {
    std::this_thread::yield();
  }
  const auto mid = dp.Checkpoint();
  EXPECT_FALSE(mid.ok());
  EXPECT_EQ(mid.status().code(), StatusCode::kFailedPrecondition);
  submitter.join();

  // Quiesced, the same data plane checkpoints fine.
  EXPECT_TRUE(dp.Checkpoint().ok());
}

}  // namespace
}  // namespace sbt
