// Data-plane boundary tests: opaque-reference validation, ingest paths, decryption, egress
// encrypt+sign, audit emission, and the full ingest->compute->egress->verify integration loop.

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "src/attest/verifier.h"
#include "src/common/rng.h"
#include "src/core/data_plane.h"
#include "src/crypto/aes128.h"
#include "tests/testing/testing.h"

namespace sbt {
namespace {

using testing::AsBytes;
using testing::MakeEvents;

DataPlaneConfig TestConfig(bool decrypt = false) {
  return testing::SmallDataPlaneConfig(decrypt);
}

TEST(DataPlaneTest, IngestReturnsOpaqueRef) {
  DataPlane dp(TestConfig());
  const auto events = MakeEvents(1000);
  auto info = dp.IngestBatch(AsBytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
  ASSERT_TRUE(info.ok());
  EXPECT_NE(info->ref, 0u);
  EXPECT_EQ(info->elems, 1000u);
  EXPECT_EQ(dp.live_refs(), 1u);
}

TEST(DataPlaneTest, RejectsMisalignedFrame) {
  DataPlane dp(TestConfig());
  std::vector<uint8_t> junk(13, 0);
  EXPECT_EQ(dp.IngestBatch(junk, sizeof(Event), 0, IngestPath::kTrustedIo).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DataPlaneTest, FabricatedRefsAreRejected) {
  DataPlane dp(TestConfig());
  const auto events = MakeEvents(100);
  auto info = dp.IngestBatch(AsBytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
  ASSERT_TRUE(info.ok());

  Xoshiro256 rng(1234);
  for (int i = 0; i < 1000; ++i) {
    InvokeRequest req;
    req.op = PrimitiveOp::kCount;
    req.inputs = {rng.Next()};
    EXPECT_EQ(dp.Invoke(req).status().code(), StatusCode::kNotFound);
  }
  // The real ref still works afterwards.
  InvokeRequest req;
  req.op = PrimitiveOp::kCount;
  req.inputs = {info->ref};
  EXPECT_TRUE(dp.Invoke(req).ok());
}

TEST(DataPlaneTest, StaleRefIsRejectedAfterConsumption) {
  DataPlane dp(TestConfig());
  const auto events = MakeEvents(100);
  auto info = dp.IngestBatch(AsBytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
  ASSERT_TRUE(info.ok());

  InvokeRequest req;
  req.op = PrimitiveOp::kCount;
  req.inputs = {info->ref};
  ASSERT_TRUE(dp.Invoke(req).ok());  // consumes (retires) the input
  EXPECT_EQ(dp.Invoke(req).status().code(), StatusCode::kNotFound);
}

TEST(DataPlaneTest, DecryptIngressRecoversPlaintext) {
  DataPlaneConfig cfg = TestConfig(/*decrypt=*/true);
  DataPlane dp(cfg);

  const auto events = MakeEvents(500);
  // Source-side encryption with the shared key (what a sensor would do).
  std::vector<uint8_t> frame(AsBytes(events).begin(), AsBytes(events).end());
  Aes128Ctr source(cfg.ingress_key, std::span<const uint8_t>(cfg.ingress_nonce.data(), 12));
  source.Crypt(std::span<uint8_t>(frame.data(), frame.size()), /*offset=*/4096);

  auto info = dp.IngestBatch(frame, sizeof(Event), 0, IngestPath::kTrustedIo, /*ctr_offset=*/4096);
  ASSERT_TRUE(info.ok());

  // Sum of values must match the plaintext sum (decryption succeeded inside the TEE).
  int64_t expected = 0;
  for (const Event& e : events) {
    expected += e.value;
  }
  InvokeRequest req;
  req.op = PrimitiveOp::kSum;
  req.inputs = {info->ref};
  auto sum = dp.Invoke(req);
  ASSERT_TRUE(sum.ok());
  auto blob = dp.Egress(sum->outputs[0].ref);
  ASSERT_TRUE(blob.ok());
  // Decrypt the egress blob like the cloud consumer would.
  Aes128Ctr egress(cfg.egress_key, std::span<const uint8_t>(cfg.egress_nonce.data(), 12));
  std::vector<uint8_t> plain = blob->ciphertext;
  egress.Crypt(std::span<uint8_t>(plain.data(), plain.size()), 0);
  int64_t got = 0;
  std::memcpy(&got, plain.data(), sizeof(got));
  EXPECT_EQ(got, expected);
}

TEST(DataPlaneTest, EgressIsEncryptedAndSigned) {
  DataPlaneConfig cfg = TestConfig();
  DataPlane dp(cfg);
  const auto events = MakeEvents(100);
  auto info = dp.IngestBatch(AsBytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
  ASSERT_TRUE(info.ok());

  auto blob = dp.Egress(info->ref);
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(blob->ciphertext.size(), events.size() * sizeof(Event));
  // Ciphertext differs from plaintext.
  EXPECT_NE(0, std::memcmp(blob->ciphertext.data(), events.data(), blob->ciphertext.size()));
  // MAC verifies with the shared key and fails after tampering.
  const auto mac = HmacSha256(
      std::span<const uint8_t>(cfg.mac_key.data(), cfg.mac_key.size()),
      std::span<const uint8_t>(blob->ciphertext.data(), blob->ciphertext.size()));
  EXPECT_TRUE(DigestEqual(mac, blob->mac));
  blob->ciphertext[0] ^= 1;
  const auto mac2 = HmacSha256(
      std::span<const uint8_t>(cfg.mac_key.data(), cfg.mac_key.size()),
      std::span<const uint8_t>(blob->ciphertext.data(), blob->ciphertext.size()));
  EXPECT_FALSE(DigestEqual(mac2, blob->mac));
  // The reference was consumed.
  EXPECT_EQ(dp.live_refs(), 0u);
}

TEST(DataPlaneTest, IoViaOsMatchesTrustedIoResults) {
  DataPlane dp(TestConfig());
  const auto events = MakeEvents(1000);
  auto a = dp.IngestBatch(AsBytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
  auto b = dp.IngestBatch(AsBytes(events), sizeof(Event), 0, IngestPath::kViaOs);
  ASSERT_TRUE(a.ok() && b.ok());
  InvokeRequest req;
  req.op = PrimitiveOp::kSum;
  req.inputs = {a->ref};
  auto sa = dp.Invoke(req);
  req.inputs = {b->ref};
  auto sb = dp.Invoke(req);
  ASSERT_TRUE(sa.ok() && sb.ok());
  auto ea = dp.Egress(sa->outputs[0].ref);
  auto eb = dp.Egress(sb->outputs[0].ref);
  ASSERT_TRUE(ea.ok() && eb.ok());
  EXPECT_EQ(ea->elems, eb->elems);
}

TEST(DataPlaneTest, SegmentEmitsWindowAnnotations) {
  DataPlane dp(TestConfig());
  const auto events = MakeEvents(1000);  // spans windows 0 and 1
  auto info = dp.IngestBatch(AsBytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
  ASSERT_TRUE(info.ok());

  InvokeRequest req;
  req.op = PrimitiveOp::kSegment;
  req.inputs = {info->ref};
  req.params.window_size_ms = 1000;
  auto resp = dp.Invoke(req);
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->outputs.size(), 2u);
  EXPECT_EQ(resp->outputs[0].win_no, 0u);
  EXPECT_EQ(resp->outputs[1].win_no, 1u);
  EXPECT_EQ(resp->outputs[0].elems + resp->outputs[1].elems, events.size());
}

TEST(DataPlaneTest, RetireInputsFalseKeepsInputsAlive) {
  DataPlane dp(TestConfig());
  const auto events = MakeEvents(100);
  auto info = dp.IngestBatch(AsBytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
  ASSERT_TRUE(info.ok());

  InvokeRequest req;
  req.op = PrimitiveOp::kCount;
  req.inputs = {info->ref};
  req.retire_inputs = false;
  ASSERT_TRUE(dp.Invoke(req).ok());
  ASSERT_TRUE(dp.Invoke(req).ok());  // still valid
  EXPECT_TRUE(dp.Release(info->ref).ok());
  EXPECT_EQ(dp.Invoke(req).status().code(), StatusCode::kNotFound);
}

TEST(DataPlaneTest, WorldSwitchAccounting) {
  DataPlaneConfig cfg = TestConfig();
  cfg.switch_cost = WorldSwitchConfig{.entry_cycles = 1000, .exit_cycles = 1000};
  DataPlane dp(cfg);
  const auto events = MakeEvents(10);
  ASSERT_TRUE(dp.IngestBatch(AsBytes(events), sizeof(Event), 0, IngestPath::kTrustedIo).ok());
  ASSERT_TRUE(dp.IngestWatermark(1000).ok());
  EXPECT_EQ(dp.switch_stats().entries, 2u);
  EXPECT_EQ(dp.switch_stats().burned_cycles, 4000u);
}

TEST(DataPlaneTest, AuditRecordsMatchExecution) {
  DataPlane dp(TestConfig());
  const auto events = MakeEvents(200);
  auto info = dp.IngestBatch(AsBytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
  ASSERT_TRUE(info.ok());
  ASSERT_TRUE(dp.IngestWatermark(2000).ok());

  InvokeRequest req;
  req.op = PrimitiveOp::kProject;
  req.inputs = {info->ref};
  auto proj = dp.Invoke(req);
  ASSERT_TRUE(proj.ok());
  req.op = PrimitiveOp::kSort;
  req.inputs = {proj->outputs[0].ref};
  auto sorted = dp.Invoke(req);
  ASSERT_TRUE(sorted.ok());
  ASSERT_TRUE(dp.Egress(sorted->outputs[0].ref).ok());

  std::vector<AuditRecord> records;
  const AuditUpload upload = dp.FlushAudit(&records);
  ASSERT_EQ(records.size(), 5u);
  EXPECT_EQ(records[0].op, PrimitiveOp::kIngress);
  EXPECT_EQ(records[1].op, PrimitiveOp::kWatermark);
  EXPECT_EQ(records[1].watermark, 2000u);
  EXPECT_EQ(records[2].op, PrimitiveOp::kProject);
  EXPECT_EQ(records[3].op, PrimitiveOp::kSort);
  EXPECT_EQ(records[4].op, PrimitiveOp::kEgress);
  // Dataflow chains: ingress output -> project input -> project output -> sort input -> egress.
  EXPECT_EQ(records[0].outputs[0], records[2].inputs[0]);
  EXPECT_EQ(records[2].outputs[0], records[3].inputs[0]);
  EXPECT_EQ(records[3].outputs[0], records[4].inputs[0]);

  // The compressed upload decodes to the same records and its MAC verifies.
  auto decoded = DecodeAuditBatch(upload.compressed);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, records);
  EXPECT_EQ(upload.record_count, 5u);

  // Flushing again yields nothing.
  std::vector<AuditRecord> empty;
  dp.FlushAudit(&empty);
  EXPECT_TRUE(empty.empty());
}

TEST(DataPlaneTest, HintsAreRecordedForAudit) {
  DataPlane dp(TestConfig());
  const auto events = MakeEvents(100);
  auto a = dp.IngestBatch(AsBytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
  ASSERT_TRUE(a.ok());

  InvokeRequest req;
  req.op = PrimitiveOp::kProject;
  req.inputs = {a->ref};
  req.hint = HintRequest::Parallel(3);
  ASSERT_TRUE(dp.Invoke(req).ok());

  std::vector<AuditRecord> records;
  dp.FlushAudit(&records);
  ASSERT_EQ(records.size(), 2u);
  ASSERT_EQ(records[1].hints.size(), 1u);
  EXPECT_EQ(records[1].hints[0].kind(), 2u);
  EXPECT_EQ(records[1].hints[0].payload(), 3u);
}

TEST(DataPlaneTest, BackpressureSignalsOnHighUtilization) {
  DataPlaneConfig cfg = TestConfig();
  cfg.partition.secure_dram_bytes = 4u << 20;
  cfg.partition.group_reserve_bytes = 4u << 20;
  cfg.backpressure_threshold = 0.5;
  DataPlane dp(cfg);
  EXPECT_FALSE(dp.ShouldBackpressure());
  const auto events = MakeEvents(200000);  // ~2.4MB of 4MB pool
  auto info = dp.IngestBatch(AsBytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(dp.ShouldBackpressure());
  ASSERT_TRUE(dp.Release(info->ref).ok());
  EXPECT_FALSE(dp.ShouldBackpressure());
}

TEST(DataPlaneTest, ConcurrentInvokesAreSafe) {
  DataPlane dp(TestConfig());
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&dp, &failures, t] {
      const auto events = MakeEvents(5000, /*keys=*/16);
      for (int i = 0; i < 10; ++i) {
        auto info = dp.IngestBatch(AsBytes(events), sizeof(Event),
                                   static_cast<uint16_t>(t % 4), IngestPath::kTrustedIo);
        if (!info.ok()) {
          ++failures;
          return;
        }
        InvokeRequest req;
        req.op = PrimitiveOp::kProject;
        req.inputs = {info->ref};
        req.hint = HintRequest::Parallel(static_cast<uint32_t>(t));
        auto proj = dp.Invoke(req);
        if (!proj.ok()) {
          ++failures;
          return;
        }
        req.op = PrimitiveOp::kSort;
        req.inputs = {proj->outputs[0].ref};
        auto sorted = dp.Invoke(req);
        if (!sorted.ok()) {
          ++failures;
          return;
        }
        if (!dp.Egress(sorted->outputs[0].ref).ok()) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(dp.live_refs(), 0u);
  EXPECT_EQ(dp.memory_stats().committed_bytes, 0u);
}

TEST(DataPlaneTest, EndToEndAuditVerifies) {
  // Full loop: ingest 2 batches + watermark, run the WinSum-style pipeline, egress, then verify
  // the audit stream against the matching declaration.
  DataPlane dp(TestConfig());
  const uint32_t kWindowMs = 1000;

  std::vector<OpaqueRef> window0_contribs;
  for (int b = 0; b < 2; ++b) {
    std::vector<Event> events(1000);
    for (size_t i = 0; i < events.size(); ++i) {
      events[i] = {.ts_ms = static_cast<EventTimeMs>(i % kWindowMs), .key = 1,
                   .value = static_cast<int32_t>(i)};
    }
    auto info = dp.IngestBatch(AsBytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
    ASSERT_TRUE(info.ok());
    InvokeRequest seg;
    seg.op = PrimitiveOp::kSegment;
    seg.inputs = {info->ref};
    seg.params.window_size_ms = kWindowMs;
    auto segs = dp.Invoke(seg);
    ASSERT_TRUE(segs.ok());
    for (const OutputInfo& out : segs->outputs) {
      InvokeRequest sum;
      sum.op = PrimitiveOp::kSum;
      sum.inputs = {out.ref};
      auto s = dp.Invoke(sum);
      ASSERT_TRUE(s.ok());
      window0_contribs.push_back(s->outputs[0].ref);
    }
  }
  ASSERT_TRUE(dp.IngestWatermark(kWindowMs).ok());

  InvokeRequest concat;
  concat.op = PrimitiveOp::kConcat;
  concat.inputs = window0_contribs;
  auto merged = dp.Invoke(concat);
  ASSERT_TRUE(merged.ok());
  InvokeRequest total;
  total.op = PrimitiveOp::kSum;
  total.inputs = {merged->outputs[0].ref};
  auto result = dp.Invoke(total);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(dp.Egress(result->outputs[0].ref).ok());

  std::vector<AuditRecord> records;
  dp.FlushAudit(&records);

  VerifierPipelineSpec spec;
  spec.window_size_ms = kWindowMs;
  spec.per_batch_chain = {PrimitiveOp::kSum};
  spec.per_window_stages = {
      WindowStage{.op = PrimitiveOp::kConcat, .input_stages = {-1}},
      WindowStage{.op = PrimitiveOp::kSum, .input_stages = {0}},
  };
  CloudVerifier verifier(spec);
  const auto report = verifier.Verify(records);
  EXPECT_TRUE(report.correct) << (report.violations.empty() ? "" : report.violations[0]);
  EXPECT_EQ(report.windows_verified, 1u);
  EXPECT_EQ(report.freshness.size(), 1u);
}

}  // namespace
}  // namespace sbt
