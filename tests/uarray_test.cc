// Tests for uArray / uGroup / allocator: lifecycle, in-place growth, hint-guided placement,
// head reclaim, misleading-hint safety, exhaustion behaviour.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/tz/secure_world.h"
#include "src/uarray/allocator.h"
#include "src/uarray/uarray.h"
#include "src/uarray/ugroup.h"
#include "tests/testing/testing.h"

namespace sbt {
namespace {

TzPartitionConfig TestConfig(size_t pool_mb = 8) {
  return testing::SmallTzPartition(pool_mb);
}

class UArrayTest : public ::testing::Test {
 protected:
  UArrayTest() : world_(TestConfig()), alloc_(&world_) {}

  SecureWorld world_;
  UArrayAllocator alloc_;
};

TEST_F(UArrayTest, CreateOpenAppendProduce) {
  auto arr = alloc_.Create(sizeof(int32_t), UArrayScope::kStreaming);
  ASSERT_TRUE(arr.ok());
  UArray* a = *arr;
  EXPECT_EQ(a->state(), UArrayState::kOpen);
  EXPECT_TRUE(a->empty());

  const int32_t values[] = {1, 2, 3, 4};
  ASSERT_TRUE(a->Append(values, sizeof(values)).ok());
  EXPECT_EQ(a->size(), 4u);

  a->Produce();
  EXPECT_EQ(a->state(), UArrayState::kProduced);
  auto span = a->Span<int32_t>();
  EXPECT_EQ(span[0], 1);
  EXPECT_EQ(span[3], 4);
}

TEST_F(UArrayTest, AppendAfterProduceFails) {
  auto arr = alloc_.Create(sizeof(int32_t), UArrayScope::kStreaming);
  ASSERT_TRUE(arr.ok());
  (*arr)->Produce();
  const int32_t v = 1;
  const Status s = (*arr)->Append(&v, sizeof(v));
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST_F(UArrayTest, AppendPartialElementFails) {
  auto arr = alloc_.Create(8, UArrayScope::kStreaming);
  ASSERT_TRUE(arr.ok());
  const uint8_t bytes[5] = {0};
  EXPECT_EQ((*arr)->Append(bytes, 5).code(), StatusCode::kInvalidArgument);
}

TEST_F(UArrayTest, ZeroElementSizeRejected) {
  EXPECT_EQ(alloc_.Create(0, UArrayScope::kStreaming).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(UArrayTest, GrowthIsInPlaceAcrossManyPages) {
  auto arr = alloc_.Create(sizeof(uint64_t), UArrayScope::kStreaming);
  ASSERT_TRUE(arr.ok());
  UArray* a = *arr;
  const uint8_t* base = a->data();
  // Append ~2MB in 64KB steps: 32 page commits, zero relocations.
  std::vector<uint64_t> block(8192, 0xabcdef);
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(a->Append(block.data(), block.size() * sizeof(uint64_t)).ok());
    EXPECT_EQ(a->data(), base);
  }
  EXPECT_EQ(a->size(), 32u * 8192u);
  EXPECT_EQ(a->Span<uint64_t>()[0], 0xabcdefull);
}

TEST_F(UArrayTest, AppendUninitializedAdvancesSize) {
  auto arr = alloc_.Create(sizeof(int32_t), UArrayScope::kStreaming);
  ASSERT_TRUE(arr.ok());
  auto dst = (*arr)->AppendUninitializedAs<int32_t>(100);
  ASSERT_TRUE(dst.ok());
  for (int i = 0; i < 100; ++i) {
    (*dst)[i] = i;
  }
  EXPECT_EQ((*arr)->size(), 100u);
  (*arr)->Produce();
  EXPECT_EQ((*arr)->Span<int32_t>()[99], 99);
}

TEST_F(UArrayTest, IdsAreMonotonic) {
  auto a = alloc_.Create(4, UArrayScope::kStreaming);
  auto b = alloc_.Create(4, UArrayScope::kStreaming);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_LT((*a)->id(), (*b)->id());
}

TEST_F(UArrayTest, FindLocatesLiveArrays) {
  auto a = alloc_.Create(4, UArrayScope::kStreaming);
  ASSERT_TRUE(a.ok());
  const uint64_t id = (*a)->id();  // Retire destroys the array, so read the id first
  EXPECT_EQ(alloc_.Find(id), *a);
  EXPECT_EQ(alloc_.Find(999999), nullptr);
  (*a)->Produce();
  alloc_.Retire(*a);
  // Retired arrays are no longer addressable.
  EXPECT_EQ(alloc_.Find(id), nullptr);
}

TEST_F(UArrayTest, DataStaysInSecureMemory) {
  auto arr = alloc_.Create(sizeof(int32_t), UArrayScope::kStreaming);
  ASSERT_TRUE(arr.ok());
  const int32_t v = 7;
  ASSERT_TRUE((*arr)->Append(&v, sizeof(v)).ok());
  EXPECT_TRUE(world_.IsSecureAddress((*arr)->data()));
}

TEST_F(UArrayTest, ConsumedAfterHintColocates) {
  // b hinted consumed-after a, a is produced and at its group's tail -> same group.
  auto a = alloc_.Create(4, UArrayScope::kStreaming);
  ASSERT_TRUE(a.ok());
  const int32_t v = 1;
  ASSERT_TRUE((*a)->Append(&v, 4).ok());
  (*a)->Produce();

  auto b = alloc_.Create(4, UArrayScope::kStreaming, PlacementHint::After((*a)->id()));
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*a)->group(), (*b)->group());
  EXPECT_GT((*b)->offset_in_group(), (*a)->offset_in_group());
}

TEST_F(UArrayTest, ConsumedAfterWalksBackAlongChain) {
  // Chain a <= b <= c. When b is already retired mid-group, c still lands after the chain's
  // produced tail.
  auto a = alloc_.Create(4, UArrayScope::kStreaming);
  ASSERT_TRUE(a.ok());
  (*a)->Produce();
  auto b = alloc_.Create(4, UArrayScope::kStreaming, PlacementHint::After((*a)->id()));
  ASSERT_TRUE(b.ok());
  (*b)->Produce();
  auto c = alloc_.Create(4, UArrayScope::kStreaming, PlacementHint::After((*b)->id()));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ((*c)->group(), (*a)->group());
}

TEST_F(UArrayTest, ConsumedAfterOpenPredecessorGetsNewGroup) {
  // Predecessor still open (growing): cannot co-locate behind it.
  auto a = alloc_.Create(4, UArrayScope::kStreaming);
  ASSERT_TRUE(a.ok());
  auto b = alloc_.Create(4, UArrayScope::kStreaming, PlacementHint::After((*a)->id()));
  ASSERT_TRUE(b.ok());
  EXPECT_NE((*a)->group(), (*b)->group());
}

TEST_F(UArrayTest, ParallelHintSeparatesLanes) {
  std::vector<UArray*> lanes;
  for (uint32_t lane = 0; lane < 4; ++lane) {
    auto arr = alloc_.Create(4, UArrayScope::kStreaming, PlacementHint::Parallel(lane));
    ASSERT_TRUE(arr.ok());
    lanes.push_back(*arr);
  }
  for (size_t i = 0; i < lanes.size(); ++i) {
    for (size_t j = i + 1; j < lanes.size(); ++j) {
      EXPECT_NE(lanes[i]->group(), lanes[j]->group()) << i << "," << j;
    }
  }
}

TEST_F(UArrayTest, ParallelLaneReusesItsGroupAcrossBatches) {
  auto a1 = alloc_.Create(4, UArrayScope::kStreaming, PlacementHint::Parallel(0));
  ASSERT_TRUE(a1.ok());
  (*a1)->Produce();
  auto a2 = alloc_.Create(4, UArrayScope::kStreaming, PlacementHint::Parallel(0));
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ((*a1)->group(), (*a2)->group());
}

TEST_F(UArrayTest, HeadReclaimFreesFramesInOrder) {
  auto a = alloc_.Create(1, UArrayScope::kStreaming);
  ASSERT_TRUE(a.ok());
  std::vector<uint8_t> big(256u << 10, 1);
  ASSERT_TRUE((*a)->Append(big.data(), big.size()).ok());
  (*a)->Produce();
  auto b = alloc_.Create(1, UArrayScope::kStreaming, PlacementHint::After((*a)->id()));
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE((*b)->Append(big.data(), big.size()).ok());
  (*b)->Produce();
  ASSERT_EQ((*a)->group(), (*b)->group());

  const size_t committed_before = world_.stats().committed_bytes;
  alloc_.Retire(*a);
  const size_t committed_after = world_.stats().committed_bytes;
  // a's four 64KB pages are gone (minus the boundary page b may share).
  EXPECT_LT(committed_after, committed_before);
  // b's data is intact.
  EXPECT_EQ((*b)->Span<uint8_t>()[0], 1);
}

TEST_F(UArrayTest, OutOfOrderRetireReclaimsLazily) {
  // Retiring b (not at head) must not reclaim anything until a retires too.
  auto a = alloc_.Create(1, UArrayScope::kStreaming);
  ASSERT_TRUE(a.ok());
  std::vector<uint8_t> big(128u << 10, 2);
  ASSERT_TRUE((*a)->Append(big.data(), big.size()).ok());
  (*a)->Produce();
  auto b = alloc_.Create(1, UArrayScope::kStreaming, PlacementHint::After((*a)->id()));
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE((*b)->Append(big.data(), big.size()).ok());
  (*b)->Produce();
  ASSERT_EQ((*a)->group(), (*b)->group());

  const size_t before = world_.stats().committed_bytes;
  alloc_.Retire(*b);
  EXPECT_EQ(world_.stats().committed_bytes, before);  // head still live
  alloc_.Retire(*a);
  EXPECT_EQ(world_.stats().committed_bytes, 0u);  // both reclaimed together
}

TEST_F(UArrayTest, EmptyGroupsAreDestroyed) {
  auto a = alloc_.Create(4, UArrayScope::kStreaming, PlacementHint::After(424242));
  ASSERT_TRUE(a.ok());
  // Unknown predecessor -> fresh group, not registered as a lane target.
  (*a)->Produce();
  const size_t groups_before = alloc_.stats().live_groups;
  alloc_.Retire(*a);
  EXPECT_LT(alloc_.stats().live_groups, groups_before);
}

TEST_F(UArrayTest, GenerationalPolicyColocatesSameGeneration) {
  UArrayAllocator gen_alloc(&world_, PlacementPolicy::kGenerational);
  auto a = gen_alloc.Create(4, UArrayScope::kStreaming, PlacementHint::None(), /*generation=*/7);
  ASSERT_TRUE(a.ok());
  (*a)->Produce();
  auto b = gen_alloc.Create(4, UArrayScope::kStreaming, PlacementHint::Parallel(1),
                            /*generation=*/7);
  ASSERT_TRUE(b.ok());
  // Generational policy ignores the hint and groups by generation.
  EXPECT_EQ((*a)->group(), (*b)->group());
}

TEST_F(UArrayTest, MisleadingHintsNeverLoseData) {
  // An adversarial control plane hints "consumed after X" for arrays that are actually consumed
  // in reverse order. Data must remain intact; only memory layout is affected.
  std::vector<UArray*> arrays;
  uint64_t prev_id = 0;
  for (int i = 0; i < 10; ++i) {
    const PlacementHint hint =
        (i == 0) ? PlacementHint::None() : PlacementHint::After(prev_id);
    auto arr = alloc_.Create(sizeof(int32_t), UArrayScope::kStreaming, hint);
    ASSERT_TRUE(arr.ok());
    const int32_t v = i;
    ASSERT_TRUE((*arr)->Append(&v, 4).ok());
    (*arr)->Produce();
    prev_id = (*arr)->id();
    arrays.push_back(*arr);
  }
  // Consume in reverse (hint was misleading).
  for (int i = 9; i >= 0; --i) {
    EXPECT_EQ(arrays[i]->Span<int32_t>()[0], i);
    alloc_.Retire(arrays[i]);
  }
  EXPECT_EQ(world_.stats().committed_bytes, 0u);
  EXPECT_EQ(alloc_.stats().live_arrays, 0u);
}

TEST_F(UArrayTest, ExhaustionSurfacesAsResourceExhausted) {
  TzPartitionConfig tiny = TestConfig(1);  // 1MB pool
  tiny.group_reserve_bytes = 4u << 20;     // virtual space outsizes physical (paper geometry)
  SecureWorld world(tiny);
  UArrayAllocator alloc(&world);
  auto arr = alloc.Create(1, UArrayScope::kStreaming);
  ASSERT_TRUE(arr.ok());
  std::vector<uint8_t> block(256u << 10, 0);
  Status last = OkStatus();
  for (int i = 0; i < 8 && last.ok(); ++i) {
    last = (*arr)->Append(block.data(), block.size());
  }
  EXPECT_EQ(last.code(), StatusCode::kResourceExhausted);
  (*arr)->Produce();
  alloc.Retire(*arr);
}

TEST_F(UArrayTest, StatsTrackCreationAndReclaim) {
  auto a = alloc_.Create(4, UArrayScope::kStreaming);
  ASSERT_TRUE(a.ok());
  (*a)->Produce();
  EXPECT_EQ(alloc_.stats().arrays_created, 1u);
  EXPECT_EQ(alloc_.stats().live_arrays, 1u);
  alloc_.Retire(*a);
  EXPECT_EQ(alloc_.stats().arrays_reclaimed, 1u);
  EXPECT_EQ(alloc_.stats().live_arrays, 0u);
}

TEST_F(UArrayTest, HintGuidedUsesLessMemoryThanGenerational) {
  // The Figure 10 effect in miniature: a producer emits pairs (x_i, y_i); x_i are consumed
  // immediately, y_i much later. Hint-guided placement separates the two lifetimes into lanes,
  // generational placement mixes them into one group whose head is pinned by the oldest y.
  auto run = [](SecureWorld* world, UArrayAllocator* alloc, bool hinted) {
    std::vector<UArray*> delayed;
    std::vector<uint8_t> block(64u << 10, 0);
    size_t peak = 0;
    for (int i = 0; i < 16; ++i) {
      const PlacementHint hx = hinted ? PlacementHint::Parallel(0) : PlacementHint::None();
      const PlacementHint hy = hinted ? PlacementHint::Parallel(1) : PlacementHint::None();
      auto y = alloc->Create(1, UArrayScope::kStreaming, hy, /*generation=*/i);
      EXPECT_TRUE(y.ok());
      EXPECT_TRUE((*y)->Append(block.data(), block.size()).ok());
      (*y)->Produce();
      auto x = alloc->Create(1, UArrayScope::kStreaming, hx, /*generation=*/i);
      EXPECT_TRUE(x.ok());
      EXPECT_TRUE((*x)->Append(block.data(), block.size()).ok());
      (*x)->Produce();
      alloc->Retire(*x);  // consumed immediately; generational placement pins it behind y
      delayed.push_back(*y);
      peak = std::max(peak, world->stats().committed_bytes);
    }
    for (UArray* y : delayed) {
      alloc->Retire(y);
    }
    return peak;
  };

  SecureWorld w1(TestConfig());
  UArrayAllocator hinted_alloc(&w1, PlacementPolicy::kHintGuided);
  const size_t hinted_peak = run(&w1, &hinted_alloc, true);

  SecureWorld w2(TestConfig());
  UArrayAllocator gen_alloc(&w2, PlacementPolicy::kGenerational);
  const size_t generational_peak = run(&w2, &gen_alloc, false);

  EXPECT_LT(hinted_peak, generational_peak);
}

}  // namespace
}  // namespace sbt
