// Tests for the commodity-engine stand-ins: all three compute the same WinSum answer as a
// direct reference (cross-engine checksum equality), so Figure 8 compares equal work.

#include <gtest/gtest.h>

#include <cstring>

#include "src/baseline/commodity.h"

namespace sbt {
namespace {

GeneratorConfig SmallGen() {
  GeneratorConfig cfg;
  cfg.batch_events = 5000;
  cfg.num_windows = 2;
  cfg.workload.kind = WorkloadKind::kIntelLab;
  cfg.workload.events_per_window = 20000;
  cfg.workload.seed = 5;
  return cfg;
}

int64_t ReferenceChecksum(const GeneratorConfig& cfg) {
  Generator gen(cfg);
  int64_t checksum = 0;
  while (auto frame = gen.NextFrame()) {
    if (frame->is_watermark) {
      continue;
    }
    for (size_t i = 0; i < frame->bytes.size(); i += sizeof(Event)) {
      Event e;
      std::memcpy(&e, frame->bytes.data() + i, sizeof(e));
      checksum += e.value;
    }
  }
  return checksum;
}

class CommodityTest : public ::testing::TestWithParam<int> {};

TEST_P(CommodityTest, ComputesCorrectWinSum) {
  std::unique_ptr<CommodityEngine> engine;
  switch (GetParam()) {
    case 0:
      engine = MakeFlinkLike(2);
      break;
    case 1:
      engine = MakeEsperLike();
      break;
    default:
      engine = MakeSensorBeeLike();
      break;
  }
  const int64_t expected = ReferenceChecksum(SmallGen());
  Generator gen(SmallGen());
  const CommodityRunResult result = engine->RunWinSum(&gen);
  EXPECT_EQ(result.checksum, expected) << engine->name();
  EXPECT_EQ(result.events, 40000u);
  EXPECT_EQ(result.windows_emitted, 2u);
  EXPECT_GT(result.events_per_sec(), 0.0);
}

std::string CommodityName(const ::testing::TestParamInfo<int>& info) {
  switch (info.param) {
    case 0:
      return "FlinkLike";
    case 1:
      return "EsperLike";
    default:
      return "SensorBeeLike";
  }
}

INSTANTIATE_TEST_SUITE_P(AllEngines, CommodityTest, ::testing::Values(0, 1, 2), CommodityName);

}  // namespace
}  // namespace sbt
