// Network ingress tests: the deterministic coalescer (SourceSequencer), the framed-TCP and
// datagram transports end to end over loopback against a live EdgeServer, churn/duplication/
// reordering tolerance, handshake authentication, and the headline equivalence property — a
// server fed by a device fleet over real sockets produces a byte-identical audit chain and
// egress to one fed the same per-device streams in-process.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "src/control/benchmarks.h"
#include "src/net/fleet.h"
#include "src/net/generator.h"
#include "src/server/edge_server.h"
#include "src/server/ingress.h"
#include "tests/testing/testing.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define SBT_UNDER_SANITIZER 1
#endif
#endif
#if !defined(SBT_UNDER_SANITIZER) && \
    (defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__))
#define SBT_UNDER_SANITIZER 1
#endif

namespace sbt {
namespace {

// Fleet size for the churn-at-scale test: 10^4 sources natively, scaled down under
// sanitizers (the nightly TSan soak pins its own size via this env var).
size_t SoakSources() {
  if (const char* env = std::getenv("SBT_INGRESS_SOAK_SOURCES")) {
    const int v = std::atoi(env);
    if (v > 0) {
      return static_cast<size_t>(v);
    }
  }
#if defined(SBT_UNDER_SANITIZER)
  return 1000;
#else
  return 10000;
#endif
}

// --- SourceSequencer ---------------------------------------------------------------------

struct DrainedFrame {
  std::vector<uint8_t> bytes;
  uint64_t ctr_offset = 0;
  bool is_watermark = false;
  EventTimeMs watermark = 0;
  std::vector<FrameSegment> segments;

  bool operator==(const DrainedFrame& o) const {
    if (bytes != o.bytes || ctr_offset != o.ctr_offset || is_watermark != o.is_watermark ||
        watermark != o.watermark || segments.size() != o.segments.size()) {
      return false;
    }
    for (size_t i = 0; i < segments.size(); ++i) {
      if (segments[i].byte_offset != o.segments[i].byte_offset ||
          segments[i].byte_len != o.segments[i].byte_len ||
          segments[i].ctr_offset != o.segments[i].ctr_offset) {
        return false;
      }
    }
    return true;
  }
};

std::vector<DrainedFrame> Drain(FrameChannel* ch) {
  std::vector<DrainedFrame> out;
  while (auto f = ch->PopWithTimeout(std::chrono::microseconds(0))) {
    out.push_back(DrainedFrame{f->bytes, f->ctr_offset, f->is_watermark, f->watermark,
                               f->segments});
  }
  return out;
}

// One device's scripted stream: two rungs of one 8-byte frame each, keystream-contiguous
// ACROSS devices in ascending-id flush order so the packer's segment merge is observable.
struct Rung {
  std::vector<uint8_t> bytes;
  uint64_t ctr_offset;
  EventTimeMs watermark;
};

std::map<uint32_t, std::vector<Rung>> ScriptedStreams() {
  const std::vector<uint32_t> devices = {2, 5, 9};
  std::map<uint32_t, std::vector<Rung>> streams;
  for (int r = 0; r < 2; ++r) {
    for (size_t i = 0; i < devices.size(); ++i) {
      const uint32_t dev = devices[i];
      Rung rung;
      rung.bytes.assign(8, static_cast<uint8_t>(dev * 10 + r));
      rung.ctr_offset = (static_cast<uint64_t>(r) * devices.size() + i) * 8;
      rung.watermark = static_cast<EventTimeMs>((r + 1) * 100);
      streams[dev].push_back(rung);
    }
  }
  return streams;
}

TEST(SourceSequencerTest, FlushOrderIsIndependentOfArrivalInterleaving) {
  const auto streams = ScriptedStreams();

  // Interleaving A: device by device, each one's whole stream before the next.
  SourceSequencer seq_a(0, /*event_size=*/4, /*coalesce_events=*/64, /*channel_capacity=*/64);
  for (const auto& [dev, rungs] : streams) {
    seq_a.AddSource(dev);
  }
  for (const auto& [dev, rungs] : streams) {
    for (const Rung& r : rungs) {
      seq_a.OnData(dev, r.bytes, r.ctr_offset);
      seq_a.OnWatermark(dev, r.watermark);
    }
  }
  for (const auto& [dev, rungs] : streams) {
    seq_a.OnDone(dev);
  }

  // Interleaving B: round-robin across devices, in reversed device order, rung by rung.
  SourceSequencer seq_b(0, 4, 64, 64);
  for (const auto& [dev, rungs] : streams) {
    seq_b.AddSource(dev);
  }
  for (size_t r = 0; r < 2; ++r) {
    for (auto it = streams.rbegin(); it != streams.rend(); ++it) {
      const Rung& rung = it->second[r];
      seq_b.OnData(it->first, rung.bytes, rung.ctr_offset);
      seq_b.OnWatermark(it->first, rung.watermark);
    }
  }
  for (const auto& [dev, rungs] : streams) {
    seq_b.OnDone(dev);
  }

  ASSERT_TRUE(seq_a.finalized() && seq_b.finalized());
  const auto frames_a = Drain(seq_a.channel());
  const auto frames_b = Drain(seq_b.channel());
  ASSERT_EQ(frames_a.size(), frames_b.size());
  for (size_t i = 0; i < frames_a.size(); ++i) {
    EXPECT_TRUE(frames_a[i] == frames_b[i]) << "frame " << i;
  }

  // Shape: per rung one coalesced batch + one group watermark, and because the scripted
  // offsets are contiguous in flush order, each batch is a single keystream segment.
  ASSERT_EQ(frames_a.size(), 4u);
  EXPECT_FALSE(frames_a[0].is_watermark);
  ASSERT_EQ(frames_a[0].segments.size(), 1u);
  EXPECT_EQ(frames_a[0].segments[0].byte_len, 24u);
  EXPECT_EQ(frames_a[0].segments[0].ctr_offset, 0u);
  EXPECT_TRUE(frames_a[1].is_watermark);
  EXPECT_EQ(frames_a[1].watermark, 100u);
  ASSERT_EQ(frames_a[2].segments.size(), 1u);
  EXPECT_EQ(frames_a[2].segments[0].ctr_offset, 24u);
  EXPECT_TRUE(frames_a[3].is_watermark);
  EXPECT_EQ(frames_a[3].watermark, 200u);
  EXPECT_EQ(seq_a.events_in(), 12u);
  EXPECT_EQ(seq_a.batches_out(), 2u);
}

TEST(SourceSequencerTest, CutsBatchesAtTheCoalesceTargetAndDropsRegressedWatermarks) {
  SourceSequencer seq(0, /*event_size=*/4, /*coalesce_events=*/4, /*channel_capacity=*/64);
  seq.AddSource(1);
  // Three 2-event frames: 2+2 fits the 4-event target, the third opens a new batch.
  seq.OnData(1, std::vector<uint8_t>(8, 0xaa), 0);
  seq.OnData(1, std::vector<uint8_t>(8, 0xbb), 8);
  seq.OnData(1, std::vector<uint8_t>(8, 0xcc), 16);
  seq.OnWatermark(1, 100);
  seq.OnWatermark(1, 100);  // repeated: dropped, not re-emitted
  seq.OnWatermark(1, 50);   // regressed: dropped (watermarks are monotone)
  seq.OnDone(1);

  const auto frames = Drain(seq.channel());
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].bytes.size(), 16u);  // frames 1+2 coalesced (one contiguous segment)
  ASSERT_EQ(frames[0].segments.size(), 1u);
  EXPECT_EQ(frames[0].segments[0].byte_len, 16u);
  EXPECT_EQ(frames[1].bytes.size(), 8u);   // frame 3 alone in the follow-up batch
  EXPECT_EQ(frames[1].segments[0].ctr_offset, 16u);
  EXPECT_TRUE(frames[2].is_watermark);
  EXPECT_EQ(frames[2].watermark, 100u);
}

// --- end-to-end over loopback ------------------------------------------------------------

struct TestDeployment {
  TenantRegistry registry_copy;  // keys, for result decryption
  std::unique_ptr<EdgeServer> server;
  std::unique_ptr<IngressFrontend> frontend;
};

GeneratorConfig DeviceGen(const TenantSpec& spec, uint32_t seed, uint32_t events_per_window,
                          uint32_t num_windows, uint32_t batch_events) {
  GeneratorConfig cfg;
  cfg.workload.kind = WorkloadKind::kIntelLab;
  cfg.workload.events_per_window = events_per_window;
  cfg.workload.window_ms = 1000;
  cfg.workload.seed = seed;
  cfg.batch_events = batch_events;
  cfg.num_windows = num_windows;
  cfg.encrypt = spec.encrypted_ingress;
  cfg.key = spec.ingress_key;
  cfg.nonce = spec.ingress_nonce;
  return cfg;
}

TestDeployment MakeDeployment(size_t num_devices, const IngressConfig& in_cfg,
                              uint32_t num_shards) {
  TestDeployment d;
  TenantRegistry registry;
  EXPECT_TRUE(registry.Add(MakeTenantSpec(1, "sensors", MakeWinSum(1000), 8u << 20)).ok());
  EXPECT_TRUE(d.registry_copy.Add(MakeTenantSpec(1, "sensors", MakeWinSum(1000), 8u << 20)).ok());

  EdgeServerConfig cfg;
  cfg.num_shards = num_shards;
  cfg.host_secure_budget_bytes = 128u << 20;
  cfg.frontend_threads = 1;
  cfg.workers_per_engine = 1;
  cfg.logical_audit_timestamps = true;  // byte-equivalence across runs needs logical clocks
  d.server = std::make_unique<EdgeServer>(cfg, std::move(registry));

  d.frontend = std::make_unique<IngressFrontend>(in_cfg, &d.registry_copy);
  for (size_t i = 0; i < num_devices; ++i) {
    EXPECT_TRUE(d.frontend->Provision(1, static_cast<uint32_t>(i)).ok());
  }
  EXPECT_TRUE(d.frontend->BindTo(d.server.get()).ok());
  EXPECT_TRUE(d.server->Start().ok());
  return d;
}

std::vector<DeviceConfig> FleetDevices(const TenantSpec& spec, size_t n,
                                       uint32_t events_per_window, uint32_t num_windows,
                                       uint32_t batch_events) {
  std::vector<DeviceConfig> devices;
  devices.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    DeviceConfig dc;
    dc.tenant = 1;
    dc.source = static_cast<uint32_t>(i);
    dc.gen = DeviceGen(spec, /*seed=*/100 + static_cast<uint32_t>(i), events_per_window,
                       num_windows, batch_events);
    dc.mac_key = spec.mac_key;
    devices.push_back(std::move(dc));
  }
  return devices;
}

// The headline property: a server fed over real loopback TCP — with connection churn and
// duplicate retransmits injected — produces a byte-identical audit chain and egress to a
// server fed the same per-device streams through the in-process delivery path.
TEST(IngressEquivalenceTest, TcpFleetMatchesInProcessDeliveryByteForByte) {
  constexpr size_t kDevices = 5;
  constexpr uint32_t kEventsPerWindow = 400;
  constexpr uint32_t kWindows = 3;
  constexpr uint32_t kBatch = 100;
  IngressConfig in_cfg;
  in_cfg.num_shards = 1;  // one group -> one engine: the strongest equivalence statement
  in_cfg.coalesce_events = 512;
  in_cfg.channel_capacity = 8;

  // Run A: in-process. Device streams delivered straight into the sequencers, one device at a
  // time (the sequencer makes the interleaving irrelevant — that is the point).
  TestDeployment a = MakeDeployment(kDevices, in_cfg, /*num_shards=*/1);
  const TenantSpec spec = *a.registry_copy.Find(1);
  for (size_t i = 0; i < kDevices; ++i) {
    Generator gen(DeviceGen(spec, 100 + static_cast<uint32_t>(i), kEventsPerWindow, kWindows,
                            kBatch));
    while (auto frame = gen.NextFrame()) {
      if (frame->is_watermark) {
        a.frontend->DeliverLocalWatermark(1, static_cast<uint32_t>(i), frame->watermark);
      } else {
        a.frontend->DeliverLocalData(1, static_cast<uint32_t>(i), std::move(frame->bytes),
                                     frame->ctr_offset);
      }
    }
    a.frontend->DeliverLocalDone(1, static_cast<uint32_t>(i));
  }
  ASSERT_TRUE(a.frontend->AllSourcesDone());
  const ServerReport report_a = a.server->Shutdown();

  // Run B: the same streams over loopback TCP with churn every 3 messages and a duplicate
  // retransmit on every second reconnect.
  TestDeployment b = MakeDeployment(kDevices, in_cfg, /*num_shards=*/1);
  ASSERT_TRUE(b.frontend->Start().ok());
  FleetConfig fc;
  fc.tcp_port = b.frontend->tcp_port();
  fc.threads = 3;
  fc.frames_per_connection = 3;
  fc.dup_on_reconnect = 2;
  DeviceFleet fleet(fc, FleetDevices(spec, kDevices, kEventsPerWindow, kWindows, kBatch));
  auto fleet_report = fleet.Run();
  ASSERT_TRUE(fleet_report.ok()) << fleet_report.status().ToString();
  ASSERT_TRUE(b.frontend->WaitAllDone(std::chrono::milliseconds(30000)));
  b.frontend->Stop();
  const ServerReport report_b = b.server->Shutdown();

  EXPECT_GT(fleet_report->connects, kDevices);  // churn actually happened
  EXPECT_GT(fleet_report->dup_injected, 0u);
  const auto stats_b = b.frontend->stats();
  EXPECT_EQ(stats_b.dup_frames, fleet_report->dup_injected);  // every dup seq was dropped
  EXPECT_EQ(stats_b.events, fleet_report->events_sent);

  // Byte-identical attestation and egress.
  ASSERT_EQ(report_a.engines.size(), 1u);
  ASSERT_EQ(report_b.engines.size(), 1u);
  const TenantShardReport& ea = report_a.engines[0];
  const TenantShardReport& eb = report_b.engines[0];
  EXPECT_TRUE(ea.verified && ea.verify.correct);
  EXPECT_TRUE(eb.verified && eb.verify.correct);
  EXPECT_EQ(ea.runner().events_ingested, eb.runner().events_ingested);
  EXPECT_EQ(ea.audit.record_count, eb.audit.record_count);
  ASSERT_EQ(ea.audit.compressed.size(), eb.audit.compressed.size());
  EXPECT_EQ(ea.audit.compressed, eb.audit.compressed) << "audit chains diverged";
  EXPECT_EQ(ea.audit.mac, eb.audit.mac);
  ASSERT_EQ(ea.windows.size(), eb.windows.size());
  for (size_t w = 0; w < ea.windows.size(); ++w) {
    EXPECT_EQ(ea.windows[w].window_index, eb.windows[w].window_index);
    ASSERT_EQ(ea.windows[w].blobs.size(), eb.windows[w].blobs.size());
    for (size_t j = 0; j < ea.windows[w].blobs.size(); ++j) {
      EXPECT_EQ(ea.windows[w].blobs[j].ciphertext, eb.windows[w].blobs[j].ciphertext)
          << "window " << w << " blob " << j;
      EXPECT_EQ(ea.windows[w].blobs[j].ctr_offset, eb.windows[w].blobs[j].ctr_offset);
    }
  }
}

// Churn at scale: SoakSources() devices (10^4 natively) over loopback TCP, every device
// reconnecting for each rung (the fleet's fd budget forces connect-per-rung) and retransmitting
// its last message on every reconnect. No event is lost, every duplicate is dropped, and the
// audit chain still verifies at shutdown.
TEST(IngressScaleTest, TcpFleetSustainsChurningSources) {
  const size_t kDevices = SoakSources();
  IngressConfig in_cfg;
  in_cfg.num_shards = 2;
  in_cfg.coalesce_events = 4096;
  TestDeployment d = MakeDeployment(kDevices, in_cfg, /*num_shards=*/2);
  const TenantSpec spec = *d.registry_copy.Find(1);
  ASSERT_TRUE(d.frontend->Start().ok());

  FleetConfig fc;
  fc.tcp_port = d.frontend->tcp_port();
  fc.threads = 4;
  fc.dup_on_reconnect = 1;
  fc.max_open_per_thread = 64;  // force connect-per-rung churn regardless of fleet size
  DeviceFleet fleet(fc, FleetDevices(spec, kDevices, /*events_per_window=*/16,
                                     /*num_windows=*/1, /*batch_events=*/16));
  auto fleet_report = fleet.Run();
  ASSERT_TRUE(fleet_report.ok()) << fleet_report.status().ToString();
  ASSERT_TRUE(d.frontend->WaitAllDone(std::chrono::milliseconds(120000)));
  d.frontend->Stop();
  const ServerReport report = d.server->Shutdown();

  const auto stats = d.frontend->stats();
  EXPECT_EQ(fleet_report->devices, kDevices);
  EXPECT_EQ(fleet_report->handshake_failures, 0u);
  EXPECT_GE(fleet_report->connects, 2 * kDevices);  // >= one churn reconnect per device
  EXPECT_EQ(stats.sessions_accepted, fleet_report->connects);
  EXPECT_EQ(stats.events, fleet_report->events_sent);  // zero loss through churn
  EXPECT_EQ(stats.events, 16u * kDevices);
  EXPECT_EQ(stats.dup_frames, fleet_report->dup_injected);
  EXPECT_GT(stats.batches, 0u);

  uint64_t ingested = 0;
  for (const TenantShardReport& e : report.engines) {
    EXPECT_EQ(e.runner().task_errors, 0u);
    EXPECT_TRUE(e.verified && e.verify.correct) << "shard " << e.shard;
    ingested += e.runner().events_ingested;
  }
  EXPECT_EQ(ingested, 16u * kDevices);
}

// Datagram mode: duplicated and reordered packets are resolved by per-device sequence numbers
// — every event still arrives exactly once, in each device's order, and the pipeline verifies.
TEST(IngressUdpTest, ToleratesDuplicationAndReordering) {
  constexpr size_t kDevices = 40;
  IngressConfig in_cfg;
  in_cfg.num_shards = 1;
  in_cfg.enable_udp = true;
  in_cfg.dgram_boot_nonce = 77;  // this deployment epoch's datagram-key randomizer
  TestDeployment d = MakeDeployment(kDevices, in_cfg, /*num_shards=*/1);
  const TenantSpec spec = *d.registry_copy.Find(1);
  ASSERT_TRUE(d.frontend->Start().ok());

  FleetConfig fc;
  fc.use_udp = true;
  fc.udp_port = d.frontend->udp_port();
  fc.dgram_boot_nonce = 77;
  fc.threads = 2;
  fc.dup_every = 3;   // every 3rd datagram sent twice
  fc.swap_every = 5;  // every 5th pair sent in swapped order
  // 10 datagrams per device (4 data frames + 1 watermark per window), so both injectors fire.
  DeviceFleet fleet(fc, FleetDevices(spec, kDevices, /*events_per_window=*/200,
                                     /*num_windows=*/2, /*batch_events=*/50));
  auto fleet_report = fleet.Run();
  ASSERT_TRUE(fleet_report.ok()) << fleet_report.status().ToString();
  ASSERT_TRUE(d.frontend->WaitAllDone(std::chrono::milliseconds(60000)));
  d.frontend->Stop();
  const ServerReport report = d.server->Shutdown();

  const auto stats = d.frontend->stats();
  EXPECT_GT(fleet_report->dup_injected, 0u);
  EXPECT_GT(fleet_report->swaps_injected, 0u);
  EXPECT_GE(stats.dup_frames, fleet_report->dup_injected);  // + kDone re-sends
  EXPECT_GT(stats.reordered_dgrams, 0u);
  EXPECT_EQ(stats.skipped_dgrams, 0u);  // loopback at this volume: nothing actually lost
  EXPECT_EQ(stats.events, fleet_report->events_sent);

  ASSERT_EQ(report.engines.size(), 1u);
  EXPECT_EQ(report.engines[0].runner().events_ingested, fleet_report->events_sent);
  EXPECT_TRUE(report.engines[0].verified && report.engines[0].verify.correct);
}

// The session handshake is the tenant boundary: a device keyed with another tenant's MAC key,
// or never provisioned at all, is rejected before a single payload byte reaches a sequencer.
TEST(IngressAuthTest, WrongTenantKeyAndUnknownDeviceAreRejected) {
  TenantRegistry registry;  // outlives the frontend; a second tenant provides the wrong key
  ASSERT_TRUE(registry.Add(MakeTenantSpec(1, "sensors", MakeWinSum(1000), 8u << 20)).ok());
  ASSERT_TRUE(registry.Add(MakeTenantSpec(2, "imposter", MakeWinSum(1000), 8u << 20)).ok());
  const TenantSpec sensors = *registry.Find(1);
  const TenantSpec imposter = *registry.Find(2);

  TenantRegistry server_registry;
  ASSERT_TRUE(server_registry.Add(MakeTenantSpec(1, "sensors", MakeWinSum(1000), 8u << 20)).ok());
  EdgeServerConfig cfg;
  cfg.num_shards = 1;
  cfg.host_secure_budget_bytes = 32u << 20;
  EdgeServer server(cfg, std::move(server_registry));

  IngressConfig in_cfg;
  in_cfg.num_shards = 1;
  IngressFrontend frontend(in_cfg, &registry);
  ASSERT_TRUE(frontend.Provision(1, /*source=*/0).ok());
  ASSERT_TRUE(frontend.BindTo(&server).ok());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(frontend.Start().ok());

  // Device 0 exists but presents tenant 2's key; device 99 was never provisioned.
  std::vector<DeviceConfig> devices;
  DeviceConfig wrong_key;
  wrong_key.tenant = 1;
  wrong_key.source = 0;
  wrong_key.gen = DeviceGen(sensors, 1, 100, 1, 100);
  wrong_key.mac_key = imposter.mac_key;
  devices.push_back(wrong_key);
  DeviceConfig unknown;
  unknown.tenant = 1;
  unknown.source = 99;
  unknown.gen = DeviceGen(sensors, 2, 100, 1, 100);
  unknown.mac_key = sensors.mac_key;
  devices.push_back(unknown);

  FleetConfig fc;
  fc.tcp_port = frontend.tcp_port();
  fc.threads = 1;
  DeviceFleet fleet(fc, devices);
  auto fleet_report = fleet.Run();
  ASSERT_TRUE(fleet_report.ok()) << fleet_report.status().ToString();
  EXPECT_EQ(fleet_report->handshake_failures, 2u);
  EXPECT_EQ(fleet_report->events_sent, 0u);

  frontend.Stop();  // aborts the never-finalized group so Shutdown cannot hang
  (void)server.Shutdown();
  const auto stats = frontend.stats();
  EXPECT_EQ(stats.sessions_rejected, 2u);
  EXPECT_EQ(stats.sessions_accepted, 0u);
  EXPECT_EQ(stats.frames, 0u);
  EXPECT_EQ(stats.events, 0u);
}

// Blocking read of one framed server reply off a (blocking) client socket.
bool ReadReply(const net::Socket& sock, wire::MsgType* type, std::vector<uint8_t>* body) {
  auto read_exact = [&](std::span<uint8_t> buf) {
    size_t off = 0;
    while (off < buf.size()) {
      const ssize_t rc = ::read(sock.fd(), buf.data() + off, buf.size() - off);
      if (rc <= 0) {
        if (rc < 0 && errno == EINTR) {
          continue;
        }
        return false;
      }
      off += static_cast<size_t>(rc);
    }
    return true;
  };
  uint8_t prefix[wire::kLengthPrefixBytes];
  if (!read_exact(std::span<uint8_t>(prefix, sizeof(prefix)))) {
    return false;
  }
  uint32_t len = 0;
  std::memcpy(&len, prefix, sizeof(len));
  if (len < 1 || len > wire::kMaxMessageBytes) {
    return false;
  }
  std::vector<uint8_t> payload(len);
  if (!read_exact(payload)) {
    return false;
  }
  *type = static_cast<wire::MsgType>(payload[0]);
  body->assign(payload.begin() + 1, payload.end());
  return true;
}

// A device that delivered its final end-of-stream cannot rejoin: the reconnect handshake
// draws a Reject. Regression test — this used to pass the handshake and reach the
// sequencer's done-state invariant, aborting the whole multi-tenant process on one
// misbehaving (but authenticated) device.
TEST(IngressAuthTest, ReconnectAfterFinalByeIsRejected) {
  IngressConfig in_cfg;
  in_cfg.num_shards = 1;
  TestDeployment d = MakeDeployment(1, in_cfg, /*num_shards=*/1);
  const TenantSpec spec = *d.registry_copy.Find(1);
  ASSERT_TRUE(d.frontend->Start().ok());

  // Drive device 0's whole stream; the fleet closes it with Bye{final}.
  FleetConfig fc;
  fc.tcp_port = d.frontend->tcp_port();
  fc.threads = 1;
  DeviceFleet fleet(fc, FleetDevices(spec, 1, /*events_per_window=*/16, /*num_windows=*/1,
                                     /*batch_events=*/16));
  auto fleet_report = fleet.Run();
  ASSERT_TRUE(fleet_report.ok()) << fleet_report.status().ToString();
  ASSERT_TRUE(d.frontend->WaitAllDone(std::chrono::milliseconds(30000)));

  // The finished device comes back and says Hello again.
  auto sock = net::TcpConnect(d.frontend->tcp_port());
  ASSERT_TRUE(sock.ok());
  wire::Hello hello;
  hello.tenant = 1;
  hello.source = 0;
  hello.stream = 0;
  hello.client_nonce = 7;
  std::vector<uint8_t> out;
  wire::AppendHello(&out, hello);
  ASSERT_TRUE(net::WriteAll(*sock, out).ok());
  wire::MsgType type;
  std::vector<uint8_t> body;
  ASSERT_TRUE(ReadReply(*sock, &type, &body));
  EXPECT_EQ(type, wire::MsgType::kReject);

  // The refused reconnect perturbed nothing: the stream's events are all there and the
  // audit chain still verifies.
  d.frontend->Stop();
  const ServerReport report = d.server->Shutdown();
  const auto stats = d.frontend->stats();
  EXPECT_EQ(stats.sessions_rejected, 1u);
  EXPECT_EQ(stats.events, 16u);
  ASSERT_EQ(report.engines.size(), 1u);
  EXPECT_TRUE(report.engines[0].verified && report.engines[0].verify.correct);
}

// Datagram keys are scoped to the deployment epoch: a fleet keyed with a stale boot nonce
// (the pre-restart key, i.e. any capture from an earlier epoch) fails every packet MAC, so
// a server restart that rotates the nonce is immune to cross-epoch replay.
TEST(IngressUdpTest, StaleBootNonceDatagramsAreRejected) {
  constexpr size_t kDevices = 4;
  IngressConfig in_cfg;
  in_cfg.num_shards = 1;
  in_cfg.enable_udp = true;
  in_cfg.dgram_boot_nonce = 2026;
  TestDeployment d = MakeDeployment(kDevices, in_cfg, /*num_shards=*/1);
  const TenantSpec spec = *d.registry_copy.Find(1);
  ASSERT_TRUE(d.frontend->Start().ok());

  FleetConfig fc;
  fc.use_udp = true;
  fc.udp_port = d.frontend->udp_port();
  fc.dgram_boot_nonce = 2025;  // the previous epoch's key
  fc.threads = 1;
  DeviceFleet fleet(fc, FleetDevices(spec, kDevices, /*events_per_window=*/20,
                                     /*num_windows=*/1, /*batch_events=*/10));
  auto fleet_report = fleet.Run();
  ASSERT_TRUE(fleet_report.ok()) << fleet_report.status().ToString();
  EXPECT_GT(fleet_report->events_sent, 0u);

  // Sends are fire-and-forget; give the IO thread a beat to (not) deliver anything.
  EXPECT_FALSE(d.frontend->WaitAllDone(std::chrono::milliseconds(200)));
  d.frontend->Stop();
  (void)d.server->Shutdown();
  const auto stats = d.frontend->stats();
  EXPECT_GT(stats.sessions_rejected, 0u);  // every datagram bounced off its MAC
  EXPECT_EQ(stats.frames, 0u);
  EXPECT_EQ(stats.events, 0u);
}

}  // namespace
}  // namespace sbt
