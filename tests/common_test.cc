// Unit tests for src/common: Status/Result, time/window math, RNG determinism.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/common/event.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/time.h"

namespace sbt {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFound("ref 0xdead");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "ref 0xdead");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: ref 0xdead");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kDeadlineExceeded); ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = InvalidArgument("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) {
    return InvalidArgument("odd");
  }
  return x / 2;
}

Status UseMacros(int x, int* out) {
  SBT_ASSIGN_OR_RETURN(int half, HalveEven(x));
  SBT_RETURN_IF_ERROR(OkStatus());
  *out = half;
  return OkStatus();
}

TEST(ResultTest, MacrosPropagate) {
  int out = 0;
  EXPECT_TRUE(UseMacros(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UseMacros(7, &out).code(), StatusCode::kInvalidArgument);
}

TEST(WindowTest, ContainsIsHalfOpen) {
  Window w{1000, 2000};
  EXPECT_FALSE(w.Contains(999));
  EXPECT_TRUE(w.Contains(1000));
  EXPECT_TRUE(w.Contains(1999));
  EXPECT_FALSE(w.Contains(2000));
  EXPECT_EQ(w.SpanMs(), 1000u);
}

TEST(FixedWindowTest, EveryTimeBelongsToExactlyOneWindow) {
  FixedWindowFn fn{.size_ms = 250};
  for (EventTimeMs t : {0u, 1u, 249u, 250u, 999u, 12345u}) {
    const uint32_t idx = fn.WindowIndex(t);
    EXPECT_TRUE(fn.WindowAt(idx).Contains(t)) << t;
    if (idx > 0) {
      EXPECT_FALSE(fn.WindowAt(idx - 1).Contains(t)) << t;
    }
    EXPECT_FALSE(fn.WindowAt(idx + 1).Contains(t)) << t;
  }
}

TEST(FixedWindowTest, BoundariesLandInTheLaterWindow) {
  FixedWindowFn fn{.size_ms = 1000};
  EXPECT_EQ(fn.WindowIndex(999), 0u);
  EXPECT_EQ(fn.WindowIndex(1000), 1u);
  EXPECT_EQ(fn.WindowAt(1).begin, 1000u);
}

TEST(EventTest, LayoutMatchesPaper) {
  EXPECT_EQ(sizeof(Event), 12u);
  EXPECT_EQ(sizeof(PowerEvent), 16u);
}

TEST(EventKeyOrderTest, IsStrictWeakOrdering) {
  Event a{.ts_ms = 5, .key = 1, .value = 2};
  Event b{.ts_ms = 5, .key = 1, .value = 3};
  Event c{.ts_ms = 4, .key = 2, .value = 0};
  EventKeyOrder lt;
  EXPECT_TRUE(lt(a, b));
  EXPECT_FALSE(lt(b, a));
  EXPECT_TRUE(lt(a, c));
  EXPECT_FALSE(lt(a, a));
}

TEST(RngTest, Xoshiro256IsDeterministicPerSeed) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  Xoshiro256 c(124);
  bool all_same = true;
  bool any_diff_seed = false;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t va = a.Next();
    all_same &= (va == b.Next());
    any_diff_seed |= (va != c.Next());
  }
  EXPECT_TRUE(all_same);
  EXPECT_TRUE(any_diff_seed);
}

TEST(RngTest, NextBelowStaysInBound) {
  Xoshiro256 rng(7);
  for (uint64_t bound : {1ull, 2ull, 10ull, 11000ull, 1ull << 20}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UnpredictableSeedsDiffer) {
  // Weak smoke check: two consecutive seeds should not collide.
  EXPECT_NE(UnpredictableSeed(), UnpredictableSeed());
}

TEST(TimeTest, NowUsIsMonotonicNonDecreasing) {
  ProcTimeUs a = NowUs();
  ProcTimeUs b = NowUs();
  EXPECT_LE(a, b);
}

TEST(TimeTest, CycleCounterAdvances) {
  const uint64_t a = ReadCycleCounter();
  // A small busy loop that the optimizer cannot remove entirely.
  volatile uint64_t sink = 0;
  for (int i = 0; i < 10000; ++i) {
    sink = sink + static_cast<uint64_t>(i);
  }
  const uint64_t b = ReadCycleCounter();
  EXPECT_GT(b, a);
}

}  // namespace
}  // namespace sbt
