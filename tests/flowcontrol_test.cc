// Adaptive flow control (the paper's §4.2 future work, implemented as an extension):
// the effective backpressure threshold tightens while the secure pool fills and relaxes while
// it drains, always inside [adaptive_floor, backpressure_threshold].

#include <gtest/gtest.h>

#include <vector>

#include "src/common/event.h"
#include "src/core/data_plane.h"
#include "tests/testing/testing.h"

namespace sbt {
namespace {

DataPlaneConfig SmallAdaptiveConfig() {
  DataPlaneConfig cfg = testing::SmallDataPlaneConfig();
  cfg.partition = testing::SmallTzPartition(8);
  cfg.backpressure_threshold = 0.9;
  cfg.adaptive_backpressure = true;
  cfg.adaptive_floor = 0.5;
  return cfg;
}

std::vector<Event> SomeEvents(size_t n) { return testing::ConstantEvents(n); }

std::span<const uint8_t> Bytes(const std::vector<Event>& v) { return testing::AsBytes(v); }

TEST(FlowControlTest, StartsAtConfiguredThreshold) {
  DataPlane dp(SmallAdaptiveConfig());
  EXPECT_DOUBLE_EQ(dp.effective_backpressure_threshold(), 0.9);
}

TEST(FlowControlTest, TightensWhilePoolFills) {
  DataPlane dp(SmallAdaptiveConfig());
  const auto events = SomeEvents(30000);  // ~360KB per frame of an 8MB pool
  std::vector<OpaqueRef> held;
  double prev_threshold = dp.effective_backpressure_threshold();
  bool tightened = false;
  for (int i = 0; i < 12; ++i) {
    auto info = dp.IngestBatch(Bytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
    ASSERT_TRUE(info.ok());
    held.push_back(info->ref);  // never consume: pure fill
    const double t = dp.effective_backpressure_threshold();
    tightened |= (t < prev_threshold);
    EXPECT_GE(t, 0.5);
    EXPECT_LE(t, 0.9);
    prev_threshold = t;
  }
  EXPECT_TRUE(tightened);
  for (OpaqueRef ref : held) {
    ASSERT_TRUE(dp.Release(ref).ok());
  }
}

TEST(FlowControlTest, RelaxesWhilePoolDrains) {
  DataPlane dp(SmallAdaptiveConfig());
  const auto events = SomeEvents(30000);
  std::vector<OpaqueRef> held;
  for (int i = 0; i < 12; ++i) {
    auto info = dp.IngestBatch(Bytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
    ASSERT_TRUE(info.ok());
    held.push_back(info->ref);
  }
  const double tightened = dp.effective_backpressure_threshold();
  ASSERT_LT(tightened, 0.9);

  // Drain everything, then ingest/release in steady state: threshold relaxes back up.
  for (OpaqueRef ref : held) {
    ASSERT_TRUE(dp.Release(ref).ok());
  }
  double threshold = tightened;
  for (int i = 0; i < 60 && threshold < 0.9; ++i) {
    auto info = dp.IngestBatch(Bytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
    ASSERT_TRUE(info.ok());
    ASSERT_TRUE(dp.Release(info->ref).ok());
    threshold = dp.effective_backpressure_threshold();
  }
  EXPECT_GT(threshold, tightened);
}

TEST(FlowControlTest, AdaptiveTriggersBackpressureEarlierThanStatic) {
  // With a rapidly filling pool the adaptive engine signals backpressure at lower utilization
  // than the static 0.9 threshold would.
  DataPlane adaptive(SmallAdaptiveConfig());
  DataPlaneConfig static_cfg = SmallAdaptiveConfig();
  static_cfg.adaptive_backpressure = false;
  DataPlane fixed(static_cfg);

  const auto events = SomeEvents(40000);  // ~480KB per frame: fast ramp
  std::vector<OpaqueRef> a_held;
  std::vector<OpaqueRef> f_held;
  int adaptive_trigger = -1;
  int static_trigger = -1;
  for (int i = 0; i < 14; ++i) {
    auto ia = adaptive.IngestBatch(Bytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
    auto fa = fixed.IngestBatch(Bytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
    ASSERT_TRUE(ia.ok() && fa.ok());
    a_held.push_back(ia->ref);
    f_held.push_back(fa->ref);
    if (adaptive_trigger < 0 && adaptive.ShouldBackpressure()) {
      adaptive_trigger = i;
    }
    if (static_trigger < 0 && fixed.ShouldBackpressure()) {
      static_trigger = i;
    }
  }
  ASSERT_GE(adaptive_trigger, 0) << "adaptive engine never signalled";
  EXPECT_TRUE(static_trigger < 0 || adaptive_trigger <= static_trigger);
  for (OpaqueRef ref : a_held) {
    ASSERT_TRUE(adaptive.Release(ref).ok());
  }
  for (OpaqueRef ref : f_held) {
    ASSERT_TRUE(fixed.Release(ref).ok());
  }
}

TEST(FlowControlTest, StaticModeIsUnaffected) {
  DataPlaneConfig cfg = SmallAdaptiveConfig();
  cfg.adaptive_backpressure = false;
  DataPlane dp(cfg);
  const auto events = SomeEvents(30000);
  for (int i = 0; i < 5; ++i) {
    auto info = dp.IngestBatch(Bytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
    ASSERT_TRUE(info.ok());
    EXPECT_DOUBLE_EQ(dp.effective_backpressure_threshold(), 0.9);
    ASSERT_TRUE(dp.Release(info->ref).ok());
  }
}

}  // namespace
}  // namespace sbt
