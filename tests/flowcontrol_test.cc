// Adaptive flow control (the paper's §4.2 future work, implemented as an extension):
// the effective backpressure threshold tightens while the secure pool fills and relaxes while
// it drains, always inside [adaptive_floor, backpressure_threshold].

#include <gtest/gtest.h>

#include <vector>

#include "src/common/event.h"
#include "src/control/benchmarks.h"
#include "src/control/runner.h"
#include "src/core/data_plane.h"
#include "src/net/channel.h"
#include "tests/testing/testing.h"

namespace sbt {
namespace {

DataPlaneConfig SmallAdaptiveConfig() {
  DataPlaneConfig cfg = testing::SmallDataPlaneConfig();
  cfg.partition = testing::SmallTzPartition(8);
  cfg.backpressure_threshold = 0.9;
  cfg.adaptive_backpressure = true;
  cfg.adaptive_floor = 0.5;
  return cfg;
}

std::vector<Event> SomeEvents(size_t n) { return testing::ConstantEvents(n); }

std::span<const uint8_t> Bytes(const std::vector<Event>& v) { return testing::AsBytes(v); }

TEST(FlowControlTest, StartsAtConfiguredThreshold) {
  DataPlane dp(SmallAdaptiveConfig());
  EXPECT_DOUBLE_EQ(dp.effective_backpressure_threshold(), 0.9);
}

TEST(FlowControlTest, TightensWhilePoolFills) {
  DataPlane dp(SmallAdaptiveConfig());
  const auto events = SomeEvents(30000);  // ~360KB per frame of an 8MB pool
  std::vector<OpaqueRef> held;
  double prev_threshold = dp.effective_backpressure_threshold();
  bool tightened = false;
  for (int i = 0; i < 12; ++i) {
    auto info = dp.IngestBatch(Bytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
    ASSERT_TRUE(info.ok());
    held.push_back(info->ref);  // never consume: pure fill
    const double t = dp.effective_backpressure_threshold();
    tightened |= (t < prev_threshold);
    EXPECT_GE(t, 0.5);
    EXPECT_LE(t, 0.9);
    prev_threshold = t;
  }
  EXPECT_TRUE(tightened);
  for (OpaqueRef ref : held) {
    ASSERT_TRUE(dp.Release(ref).ok());
  }
}

TEST(FlowControlTest, RelaxesWhilePoolDrains) {
  DataPlane dp(SmallAdaptiveConfig());
  const auto events = SomeEvents(30000);
  std::vector<OpaqueRef> held;
  for (int i = 0; i < 12; ++i) {
    auto info = dp.IngestBatch(Bytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
    ASSERT_TRUE(info.ok());
    held.push_back(info->ref);
  }
  const double tightened = dp.effective_backpressure_threshold();
  ASSERT_LT(tightened, 0.9);

  // Drain everything, then ingest/release in steady state: threshold relaxes back up.
  for (OpaqueRef ref : held) {
    ASSERT_TRUE(dp.Release(ref).ok());
  }
  double threshold = tightened;
  for (int i = 0; i < 60 && threshold < 0.9; ++i) {
    auto info = dp.IngestBatch(Bytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
    ASSERT_TRUE(info.ok());
    ASSERT_TRUE(dp.Release(info->ref).ok());
    threshold = dp.effective_backpressure_threshold();
  }
  EXPECT_GT(threshold, tightened);
}

TEST(FlowControlTest, AdaptiveTriggersBackpressureEarlierThanStatic) {
  // With a rapidly filling pool the adaptive engine signals backpressure at lower utilization
  // than the static 0.9 threshold would.
  DataPlane adaptive(SmallAdaptiveConfig());
  DataPlaneConfig static_cfg = SmallAdaptiveConfig();
  static_cfg.adaptive_backpressure = false;
  DataPlane fixed(static_cfg);

  const auto events = SomeEvents(40000);  // ~480KB per frame: fast ramp
  std::vector<OpaqueRef> a_held;
  std::vector<OpaqueRef> f_held;
  int adaptive_trigger = -1;
  int static_trigger = -1;
  for (int i = 0; i < 14; ++i) {
    auto ia = adaptive.IngestBatch(Bytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
    auto fa = fixed.IngestBatch(Bytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
    ASSERT_TRUE(ia.ok() && fa.ok());
    a_held.push_back(ia->ref);
    f_held.push_back(fa->ref);
    if (adaptive_trigger < 0 && adaptive.ShouldBackpressure()) {
      adaptive_trigger = i;
    }
    if (static_trigger < 0 && fixed.ShouldBackpressure()) {
      static_trigger = i;
    }
  }
  ASSERT_GE(adaptive_trigger, 0) << "adaptive engine never signalled";
  EXPECT_TRUE(static_trigger < 0 || adaptive_trigger <= static_trigger);
  for (OpaqueRef ref : a_held) {
    ASSERT_TRUE(adaptive.Release(ref).ok());
  }
  for (OpaqueRef ref : f_held) {
    ASSERT_TRUE(fixed.Release(ref).ok());
  }
}

// --- deterministic fault injection on the exhaustion paths (ScopedFailPoint fixture) -----

TEST(FlowControlTest, InjectedExhaustionRetiresPartialBatchAndRecovers) {
  DataPlaneConfig cfg = SmallAdaptiveConfig();
  cfg.adaptive_backpressure = false;
  DataPlane dp(cfg);
  const auto events = SomeEvents(30000);  // ~360KB: six 64KB pages per frame
  {
    // The 3rd frame allocation of the ingest fails: a partially grown batch exists at the
    // moment of exhaustion — the exact path that used to pin pool utilization forever.
    testing::ScopedFailPoint fp("secure_world.alloc_frame",
                                testing::ScopedFailPoint::Counted(/*skip=*/2));
    auto info = dp.IngestBatch(Bytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
    ASSERT_FALSE(info.ok());
    EXPECT_EQ(info.status().code(), StatusCode::kResourceExhausted);
  }
  // The partial batch was retired: nothing stays committed, backpressure clears, and the
  // very same ingest succeeds once the (injected) exhaustion passes.
  EXPECT_EQ(dp.memory_stats().committed_bytes, 0u);
  EXPECT_FALSE(dp.ShouldBackpressure());
  auto info = dp.IngestBatch(Bytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
  ASSERT_TRUE(info.ok());
  ASSERT_TRUE(dp.Release(info->ref).ok());
  EXPECT_EQ(dp.memory_stats().committed_bytes, 0u);
}

TEST(FlowControlTest, SeededAllocFaultsNeverBreakTheEngine) {
  DataPlaneConfig cfg = SmallAdaptiveConfig();
  cfg.adaptive_backpressure = false;
  DataPlane dp(cfg);
  RunnerConfig rc;
  rc.knobs.worker_threads = 2;
  rc.block_on_backpressure = false;
  Runner runner(&dp, MakeWinSum(1000), rc);

  uint64_t failures = 0;
  {
    // One in six secure-frame allocations fails, seeded: ingest and chain tasks hit
    // exhaustion mid-flight, repeatably.
    testing::ScopedFailPoint fp("secure_world.alloc_frame",
                                testing::ScopedFailPoint::Seeded(/*seed=*/2024, 1, 6));
    for (uint32_t w = 0; w < 8; ++w) {
      std::vector<Event> events = testing::ConstantEvents(5000);
      for (size_t i = 0; i < events.size(); ++i) {
        events[i].ts_ms = w * 1000 + static_cast<EventTimeMs>(i % 1000);
      }
      if (!runner.IngestFrame(testing::AsBytes(events)).ok()) {
        ++failures;
      }
      ASSERT_TRUE(runner.AdvanceWatermark((w + 1) * 1000).ok());
    }
    runner.Drain();
    EXPECT_GT(failures + runner.stats().task_errors, 0u) << "p=1/6 over dozens of draws";
  }
  // Bounded secure memory held throughout, and the engine still works after the faults stop:
  // a fresh window ingests, closes, and emits.
  EXPECT_LE(dp.memory_stats().peak_committed, dp.memory_stats().pool_bytes);
  const uint64_t emitted_before = runner.stats().windows_emitted;
  std::vector<Event> clean = testing::ConstantEvents(5000);
  for (size_t i = 0; i < clean.size(); ++i) {
    clean[i].ts_ms = 100000 + static_cast<EventTimeMs>(i % 1000);
  }
  ASSERT_TRUE(runner.IngestFrame(testing::AsBytes(clean)).ok());
  ASSERT_TRUE(runner.AdvanceWatermark(101000).ok());
  runner.Drain();
  EXPECT_EQ(runner.stats().windows_emitted, emitted_before + 1);
}

TEST(FlowControlTest, InjectedQueueFullSignalsShedDeterministically) {
  // The shard-queue backpressure signal (TryPush -> false) on a seeded schedule: hits 3, 4,
  // then every 10th pair — the shed path runs on purpose, with the channel nowhere near full.
  BoundedChannel<int> channel(64);
  testing::ScopedFailPoint fp("channel.try_push",
                              testing::ScopedFailPoint::Counted(/*skip=*/3, /*fail=*/2,
                                                                /*period=*/10));
  int shed = 0;
  for (int i = 0; i < 20; ++i) {
    int v = i;
    if (!channel.TryPush(v)) {
      ++shed;
    }
  }
  EXPECT_EQ(shed, 4);  // hits 3, 4, 13, 14
  EXPECT_EQ(channel.size(), 16u);
}

TEST(FlowControlTest, StaticModeIsUnaffected) {
  DataPlaneConfig cfg = SmallAdaptiveConfig();
  cfg.adaptive_backpressure = false;
  DataPlane dp(cfg);
  const auto events = SomeEvents(30000);
  for (int i = 0; i < 5; ++i) {
    auto info = dp.IngestBatch(Bytes(events), sizeof(Event), 0, IngestPath::kTrustedIo);
    ASSERT_TRUE(info.ok());
    EXPECT_DOUBLE_EQ(dp.effective_backpressure_threshold(), 0.9);
    ASSERT_TRUE(dp.Release(info->ref).ok());
  }
}

}  // namespace
}  // namespace sbt
