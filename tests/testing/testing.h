// Shared test support: deterministic RNG-seeded event generation, small pipeline /
// data-plane / harness builders, and audit-stream helpers (honest sessions plus
// tamper mutations) used across the suites. Factored out of per-suite fixture code
// so every suite exercises the same deterministic inputs.

#ifndef TESTS_TESTING_TESTING_H_
#define TESTS_TESTING_TESTING_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/attest/audit_record.h"
#include "src/attest/verifier.h"
#include "src/common/event.h"
#include "src/common/failpoint.h"
#include "src/control/harness.h"
#include "src/core/data_plane.h"
#include "src/net/generator.h"
#include "src/tz/tzasc.h"

namespace sbt {
namespace testing {

// --- deterministic fault injection --------------------------------------------

// RAII arm/disarm of one fail point (src/common/failpoint.h). Schedules are deterministic:
// either counted (skip N hits, fail the next M, optionally repeating) or a seeded Bernoulli
// draw — the same seed always fails the same hits.
class ScopedFailPoint {
 public:
  ScopedFailPoint(std::string name, FailPointSpec spec) : name_(std::move(name)) {
    FailPoints::Arm(name_, spec);
  }
  ~ScopedFailPoint() { FailPoints::Disarm(name_); }
  ScopedFailPoint(const ScopedFailPoint&) = delete;
  ScopedFailPoint& operator=(const ScopedFailPoint&) = delete;

  uint64_t hits() const { return FailPoints::Hits(name_); }

  // Counted schedule: fail hits [skip, skip+fail), repeating every `period` hits if nonzero.
  static FailPointSpec Counted(uint64_t skip, uint64_t fail = 1, uint64_t period = 0) {
    return FailPointSpec{.skip = skip, .fail = fail, .period = period};
  }
  // Seeded Bernoulli: each hit fails with probability num/den.
  static FailPointSpec Seeded(uint64_t seed, uint64_t num, uint64_t den) {
    return FailPointSpec{.prob_num = num, .prob_den = den, .seed = seed};
  }

 private:
  std::string name_;
};

// --- deterministic event generation -------------------------------------------

// `n` events spread uniformly over two `window_ms` windows, keys/values drawn from
// a fixed-seed Xoshiro256. Same arguments => identical bytes, on every platform.
std::vector<Event> MakeEvents(size_t n, uint32_t keys = 8, uint32_t window_ms = 1000,
                              uint64_t seed = 55);

// `n` identical events (ts 0), for capacity/backpressure tests where the payload
// content is irrelevant.
std::vector<Event> ConstantEvents(size_t n, uint32_t key = 1, int32_t value = 1);

// Raw-byte view of an event vector, as the ingest path consumes it.
std::span<const uint8_t> AsBytes(const std::vector<Event>& events);

// Regenerates the generator's event stream in plaintext (same seed => same events),
// for computing reference results against harness output.
std::vector<Event> RegenerateEvents(const GeneratorConfig& cfg, uint64_t seed_offset = 0);

// --- small pipeline builders --------------------------------------------------

// Secure-world partition sized for unit tests: `pool_mb` MB of secure DRAM and
// group reserve, 64KB pages.
TzPartitionConfig SmallTzPartition(size_t pool_mb = 8);

// Data-plane config small enough for unit tests: 64MB secure pool, world-switch
// cost modeling disabled, fixed ingress/egress/mac keys.
DataPlaneConfig SmallDataPlaneConfig(bool decrypt_ingress = false);

// Harness options for a 3-window, 30k-events-per-window run (seconds, not minutes).
HarnessOptions SmallHarnessOptions(EngineVersion version = EngineVersion::kStreamBoxTz);

// --- audit-stream helpers -----------------------------------------------------

// Synthetic audit-record stream with a realistic op mix (ingress / watermark /
// segment / sort / sumcnt), deterministic per seed. Used by compression tests.
std::vector<AuditRecord> SyntheticAuditRecords(size_t n, uint64_t seed);

// A small honest session: one batch segmented into two windows; window 0 closed
// and fully processed; window 1 in flight. Record layout:
//   [0] Ingress->1  [1] Segment 1->{10,11}  [2] Sort 10->20  [3] Sort 11->21
//   [4] Watermark@1000  [5] MergeN 20->30  [6] Sum 30->31  [7] Egress 31
std::vector<AuditRecord> HonestAuditSession();

// The verifier spec matching HonestAuditSession.
VerifierPipelineSpec HonestAuditSpec();

// Tamper mutations, each modeling one attack class from §6 of the paper. All take
// an honest stream and corrupt it in place.
void TamperDropEgress(std::vector<AuditRecord>& records);          // drop result
void TamperStallWindow(std::vector<AuditRecord>& records);         // unprocessed window data
void TamperSubstituteInput(std::vector<AuditRecord>& records);     // partial data
void TamperWrongOperator(std::vector<AuditRecord>& records);       // op substitution
void TamperFabricatedReference(std::vector<AuditRecord>& records); // consume unproduced id
void TamperDoubleProduction(std::vector<AuditRecord>& records);    // re-emit existing id
void TamperUndeclaredEgress(std::vector<AuditRecord>& records);    // exfiltrate raw data
void TamperEarlyProcessing(std::vector<AuditRecord>& records);     // process before watermark

}  // namespace testing
}  // namespace sbt

#endif  // TESTS_TESTING_TESTING_H_
