#include "tests/testing/testing.h"

#include <cstring>
#include <utility>

#include "src/common/rng.h"
#include "src/crypto/aes128.h"
#include "src/tz/world_switch.h"

namespace sbt {
namespace testing {

std::vector<Event> MakeEvents(size_t n, uint32_t keys, uint32_t window_ms, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Event> events(n);
  for (size_t i = 0; i < n; ++i) {
    events[i].ts_ms = static_cast<EventTimeMs>(i * window_ms * 2 / n);  // spans 2 windows
    events[i].key = static_cast<uint32_t>(rng.NextBelow(keys));
    events[i].value = static_cast<int32_t>(rng.NextBelow(1000));
  }
  return events;
}

std::vector<Event> ConstantEvents(size_t n, uint32_t key, int32_t value) {
  std::vector<Event> events(n);
  for (size_t i = 0; i < n; ++i) {
    events[i] = {.ts_ms = 0, .key = key, .value = value};
  }
  return events;
}

std::span<const uint8_t> AsBytes(const std::vector<Event>& events) {
  return std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(events.data()),
                                  events.size() * sizeof(Event));
}

std::vector<Event> RegenerateEvents(const GeneratorConfig& cfg, uint64_t seed_offset) {
  GeneratorConfig copy = cfg;
  copy.encrypt = false;
  copy.workload.seed += seed_offset;
  Generator gen(copy);
  std::vector<Event> events;
  while (auto frame = gen.NextFrame()) {
    if (frame->is_watermark) {
      continue;
    }
    const size_t n = frame->bytes.size() / sizeof(Event);
    const size_t start = events.size();
    events.resize(start + n);
    std::memcpy(events.data() + start, frame->bytes.data(), n * sizeof(Event));
  }
  return events;
}

TzPartitionConfig SmallTzPartition(size_t pool_mb) {
  TzPartitionConfig cfg;
  cfg.secure_dram_bytes = pool_mb << 20;
  cfg.secure_page_bytes = 64u << 10;
  cfg.group_reserve_bytes = pool_mb << 20;
  return cfg;
}

DataPlaneConfig SmallDataPlaneConfig(bool decrypt_ingress) {
  DataPlaneConfig cfg;
  cfg.partition.secure_dram_bytes = 64u << 20;
  cfg.partition.secure_page_bytes = 64u << 10;
  cfg.partition.group_reserve_bytes = 64u << 20;
  cfg.switch_cost = WorldSwitchConfig::Disabled();
  cfg.decrypt_ingress = decrypt_ingress;
  for (size_t i = 0; i < kAesKeySize; ++i) {
    cfg.ingress_key[i] = static_cast<uint8_t>(i + 1);
    cfg.egress_key[i] = static_cast<uint8_t>(2 * i + 1);
    cfg.mac_key[i] = static_cast<uint8_t>(3 * i + 7);
  }
  cfg.ingress_nonce.fill(0x11);
  cfg.egress_nonce.fill(0x22);
  return cfg;
}

HarnessOptions SmallHarnessOptions(EngineVersion version) {
  HarnessOptions opts;
  opts.version = version;
  opts.engine.secure_pool_mb = 128;
  opts.engine.knobs.worker_threads = 4;
  opts.generator.batch_events = 10000;
  opts.generator.num_windows = 3;
  opts.generator.workload.events_per_window = 30000;
  opts.generator.workload.window_ms = 1000;
  opts.generator.workload.seed = 42;
  return opts;
}

namespace {
// Deterministic lane-spreading for synthetic parallel hints.
size_t LaneOf(size_t i) { return (i * 2654435761u) % 8; }
}  // namespace

std::vector<AuditRecord> SyntheticAuditRecords(size_t n, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<AuditRecord> records;
  uint32_t next_id = 1;
  uint32_t ts = 0;
  for (size_t i = 0; i < n; ++i) {
    AuditRecord r;
    ts += static_cast<uint32_t>(rng.NextBelow(5));
    r.ts_ms = ts;
    const uint64_t kind = rng.NextBelow(10);
    if (kind == 0) {
      r.op = PrimitiveOp::kIngress;
      r.outputs = {next_id++};
    } else if (kind == 1) {
      r.op = PrimitiveOp::kWatermark;
      r.watermark = ts * 10;
    } else if (kind == 2) {
      r.op = PrimitiveOp::kSegment;
      r.inputs = {next_id - 1};
      for (int o = 0; o < 3; ++o) {
        r.outputs.push_back(next_id++);
        r.win_nos.push_back(static_cast<uint16_t>(i / 50 + o));
      }
      r.hints.push_back(AuditHint::Parallel(static_cast<uint32_t>(LaneOf(i))));
    } else {
      r.op = (kind < 6) ? PrimitiveOp::kSort : PrimitiveOp::kSumCnt;
      r.inputs = {next_id - 1};
      r.outputs = {next_id++};
      if (kind == 3) {
        r.hints.push_back(AuditHint::After(next_id - 2));
      }
    }
    r.stream = static_cast<uint16_t>(rng.NextBelow(2));
    records.push_back(std::move(r));
  }
  return records;
}

std::vector<AuditRecord> HonestAuditSession() {
  std::vector<AuditRecord> r;
  r.push_back({.op = PrimitiveOp::kIngress, .ts_ms = 1, .outputs = {1}});
  r.push_back({.op = PrimitiveOp::kSegment,
               .ts_ms = 2,
               .inputs = {1},
               .outputs = {10, 11},
               .win_nos = {0, 1}});
  r.push_back({.op = PrimitiveOp::kSort, .ts_ms = 3, .inputs = {10}, .outputs = {20}});
  r.push_back({.op = PrimitiveOp::kSort, .ts_ms = 4, .inputs = {11}, .outputs = {21}});
  r.push_back({.op = PrimitiveOp::kWatermark, .ts_ms = 50, .watermark = 1000});
  r.push_back({.op = PrimitiveOp::kMergeN, .ts_ms = 55, .inputs = {20}, .outputs = {30}});
  r.push_back({.op = PrimitiveOp::kSum, .ts_ms = 60, .inputs = {30}, .outputs = {31}});
  r.push_back({.op = PrimitiveOp::kEgress, .ts_ms = 80, .inputs = {31}});
  return r;
}

VerifierPipelineSpec HonestAuditSpec() {
  VerifierPipelineSpec spec;
  spec.window_size_ms = 1000;
  spec.per_batch_chain = {PrimitiveOp::kSort};
  spec.per_window_stages = {
      WindowStage{.op = PrimitiveOp::kMergeN, .input_stages = {-1}},
      WindowStage{.op = PrimitiveOp::kSum, .input_stages = {0}},
  };
  return spec;
}

void TamperDropEgress(std::vector<AuditRecord>& records) { records.pop_back(); }

void TamperStallWindow(std::vector<AuditRecord>& records) {
  records.erase(records.begin() + 6);  // remove Sum: MergeN output stalls
}

void TamperSubstituteInput(std::vector<AuditRecord>& records) {
  // The MergeN "forgets" contribution 20 and merges a fabricated id instead.
  records[5].inputs = {99};
  records.insert(records.begin() + 5,
                 AuditRecord{.op = PrimitiveOp::kIngress, .ts_ms = 54, .outputs = {99}});
}

void TamperWrongOperator(std::vector<AuditRecord>& records) {
  records[2].op = PrimitiveOp::kSample;  // declared Sort, executed Sample
}

void TamperFabricatedReference(std::vector<AuditRecord>& records) {
  records[6].inputs.push_back(0xdead);  // Sum consumes an id nobody produced
}

void TamperDoubleProduction(std::vector<AuditRecord>& records) {
  records.push_back({.op = PrimitiveOp::kIngress, .ts_ms = 90, .outputs = {20}});
}

void TamperUndeclaredEgress(std::vector<AuditRecord>& records) {
  // Exfiltrate the raw sorted window-1 data (never reached the declared egress stage).
  records.push_back({.op = PrimitiveOp::kEgress, .ts_ms = 95, .inputs = {21}});
}

void TamperEarlyProcessing(std::vector<AuditRecord>& records) {
  // Window 1 is processed although no watermark closed it.
  records.push_back({.op = PrimitiveOp::kMergeN, .ts_ms = 90, .inputs = {21}, .outputs = {40}});
}

}  // namespace testing
}  // namespace sbt
