// Observability layer tests: lock-free instruments under concurrent writers, registry
// interning and export formats, the flight-recorder ring semantics, and the logging
// level/sink overrides. The concurrent cases double as the TSan targets for the obs layer
// (this suite carries the "concurrent" label).

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/logging.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace sbt {
namespace obs {
namespace {

TEST(CounterTest, ExactUnderConcurrentWriters) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        c.Add(1);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAddValue) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0);
  g.Set(42);
  EXPECT_EQ(g.Value(), 42);
  g.Add(-50);
  EXPECT_EQ(g.Value(), -8);
}

TEST(HistogramTest, BucketBoundsArePowerOfTwoRanges) {
  // Bucket b holds values with bit_width b: 0 -> bucket 0, 1 -> 1, [2,3] -> 2, [4,7] -> 3.
  Histogram h;
  h.Observe(0);
  h.Observe(1);
  h.Observe(2);
  h.Observe(3);
  h.Observe(7);
  const std::vector<uint64_t> buckets = h.BucketCounts();
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 2u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(h.Count(), 5u);
  EXPECT_EQ(h.Sum(), 0u + 1 + 2 + 3 + 7);
  // The le bound of bucket b is 2^b - 1: every value in the bucket satisfies v <= bound.
  EXPECT_EQ(Histogram::BucketBound(0), 0u);
  EXPECT_EQ(Histogram::BucketBound(3), 7u);
}

TEST(HistogramTest, HugeValuesLandInLastBucket) {
  Histogram h;
  h.Observe(~uint64_t{0});
  EXPECT_EQ(h.BucketCounts()[Histogram::kBuckets - 1], 1u);
  EXPECT_EQ(h.Count(), 1u);
}

TEST(HistogramTest, ExactUnderConcurrentWriters) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h.Observe(static_cast<uint64_t>(t));  // thread t observes value t, kPerThread times
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(h.Count(), kThreads * kPerThread);
  uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    expected_sum += static_cast<uint64_t>(t) * kPerThread;
  }
  EXPECT_EQ(h.Sum(), expected_sum);
}

TEST(RegistryTest, InterningReturnsStablePointers) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("requests_total", {{"tenant", "alpha"}});
  Counter* b = reg.GetCounter("requests_total", {{"tenant", "alpha"}});
  Counter* c = reg.GetCounter("requests_total", {{"tenant", "beta"}});
  EXPECT_EQ(a, b);        // same (name, labels) -> same instrument
  EXPECT_NE(a, c);        // different labels -> distinct instrument
  a->Add(3);
  EXPECT_EQ(b->Value(), 3u);
  EXPECT_EQ(c->Value(), 0u);
}

TEST(RegistryTest, SnapshotIsMonotonicAcrossScrapes) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("ops_total");
  Histogram* h = reg.GetHistogram("latency");
  c->Add(5);
  h->Observe(100);
  const MetricsSnapshot s1 = reg.Snapshot();
  c->Add(5);
  h->Observe(100);
  const MetricsSnapshot s2 = reg.Snapshot();

  const MetricSample* c1 = s1.Find("ops_total");
  const MetricSample* c2 = s2.Find("ops_total");
  ASSERT_NE(c1, nullptr);
  ASSERT_NE(c2, nullptr);
  EXPECT_EQ(c1->value, 5.0);
  EXPECT_EQ(c2->value, 10.0);
  const MetricSample* h1 = s1.Find("latency");
  const MetricSample* h2 = s2.Find("latency");
  ASSERT_NE(h1, nullptr);
  ASSERT_NE(h2, nullptr);
  EXPECT_GE(h2->count, h1->count);
  EXPECT_GE(h2->sum, h1->sum);
}

TEST(RegistryTest, FindMatchesLabels) {
  MetricsRegistry reg;
  reg.GetGauge("depth", {{"shard", "0"}})->Set(7);
  reg.GetGauge("depth", {{"shard", "1"}})->Set(9);
  const MetricsSnapshot snap = reg.Snapshot();
  const MetricSample* s0 = snap.Find("depth", {{"shard", "0"}});
  const MetricSample* s1 = snap.Find("depth", {{"shard", "1"}});
  ASSERT_NE(s0, nullptr);
  ASSERT_NE(s1, nullptr);
  EXPECT_EQ(s0->value, 7.0);
  EXPECT_EQ(s1->value, 9.0);
  EXPECT_EQ(snap.Find("depth", {{"shard", "2"}}), nullptr);
  EXPECT_EQ(snap.Find("absent"), nullptr);
}

TEST(RegistryTest, PrometheusTextFormat) {
  MetricsRegistry reg;
  reg.GetCounter("events_total", {{"tenant", "alpha"}})->Add(12);
  reg.GetGauge("pool_bytes")->Set(4096);
  Histogram* h = reg.GetHistogram("chain_us");
  h->Observe(3);
  h->Observe(3);
  const std::string text = ToPrometheusText(reg.Snapshot());
  EXPECT_NE(text.find("# TYPE events_total counter"), std::string::npos);
  EXPECT_NE(text.find("events_total{tenant=\"alpha\"} 12"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pool_bytes gauge"), std::string::npos);
  EXPECT_NE(text.find("pool_bytes 4096"), std::string::npos);
  // Histogram: cumulative buckets, a +Inf bucket, _sum and _count series.
  EXPECT_NE(text.find("# TYPE chain_us histogram"), std::string::npos);
  EXPECT_NE(text.find("chain_us_bucket{le=\"3\"} 2"), std::string::npos);
  EXPECT_NE(text.find("chain_us_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("chain_us_sum 6"), std::string::npos);
  EXPECT_NE(text.find("chain_us_count 2"), std::string::npos);
}

TEST(RegistryTest, JsonExportCarriesKindsAndBuckets) {
  MetricsRegistry reg;
  reg.GetCounter("c_total")->Add(1);
  reg.GetHistogram("h")->Observe(5);
  const std::string json = ToJson(reg.Snapshot());
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"c_total\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"le\""), std::string::npos);
}

TEST(RegistryTest, ConcurrentInterningAndWriting) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      // All threads intern the same metric concurrently and hammer it; interning must be
      // race-free and every Add must land on the one shared instrument.
      Counter* c = reg.GetCounter("shared_total");
      for (int i = 0; i < 10000; ++i) {
        c->Add(1);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(reg.GetCounter("shared_total")->Value(), 8u * 10000u);
}

// --- Tracer (process-global; each test leaves tracing disabled behind itself) ---

class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global().SetSampleEvery(1);
    Tracer::Global().Drain();  // discard events left by earlier tests / instrumented code
  }
  void TearDown() override {
    Tracer::Global().SetSampleEvery(0);
    Tracer::Global().Drain();
  }
};

TEST_F(TracerTest, DisabledTracePathIsANoOp) {
  Tracer::Global().SetSampleEvery(0);
  EXPECT_FALSE(Tracer::Global().enabled());
  EXPECT_FALSE(Tracer::Global().ShouldSample(0));
  {
    SBT_TRACE_SPAN("test.span", 1, 0);
    SBT_TRACE_INSTANT("test.instant", 1, 0);
  }
  EXPECT_TRUE(Tracer::Global().Drain().empty());
}

TEST_F(TracerTest, SamplingKeepsEveryNthTicketAndAllStructuralEvents) {
  Tracer::Global().SetSampleEvery(4);
  EXPECT_TRUE(Tracer::Global().ShouldSample(0));   // structural events always recorded
  EXPECT_TRUE(Tracer::Global().ShouldSample(8));
  EXPECT_FALSE(Tracer::Global().ShouldSample(9));
  for (uint64_t seq = 1; seq <= 8; ++seq) {
    SBT_TRACE_INSTANT("test.tick", seq, seq);
  }
  const std::vector<TraceEvent> events = Tracer::Global().Drain();
  ASSERT_EQ(events.size(), 2u);  // tickets 4 and 8 only
  EXPECT_EQ(events[0].ticket, 4u);
  EXPECT_EQ(events[1].ticket, 8u);
}

TEST_F(TracerTest, SpanRecordsDurationAndArg) {
  {
    TraceSpan span("test.work", 12, 0);
    span.set_arg(99);
  }
  const std::vector<TraceEvent> events = Tracer::Global().Drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "test.work");
  EXPECT_EQ(events[0].phase, 'X');
  EXPECT_EQ(events[0].ticket, 12u);
  EXPECT_EQ(events[0].arg, 99u);
}

TEST_F(TracerTest, RingWrapsKeepingNewestEvents) {
  Tracer::Global().SetRingCapacity(8);
  const uint64_t dropped_before = Tracer::Global().dropped();
  // A fresh thread gets a fresh ring at the shrunken capacity; 20 events into 8 slots must
  // keep the newest 8 and count 12 overwrites.
  std::thread writer([] {
    for (uint64_t i = 1; i <= 20; ++i) {
      SBT_TRACE_INSTANT("test.wrap", 0, i);
    }
  });
  writer.join();
  const std::vector<TraceEvent> events = Tracer::Global().Drain();
  Tracer::Global().SetRingCapacity(4096);
  ASSERT_EQ(events.size(), 8u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].arg, 13 + i);  // oldest surviving event is #13
  }
  EXPECT_EQ(Tracer::Global().dropped() - dropped_before, 12u);
}

TEST_F(TracerTest, ConcurrentWritersDrainChronologically) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        SBT_TRACE_INSTANT("test.concurrent", 0, static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  const std::vector<TraceEvent> events = Tracer::Global().Drain();
  EXPECT_EQ(events.size(), static_cast<size_t>(kThreads * kPerThread));
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_us, events[i].ts_us);  // merged in chronological order
  }
}

// --- Logging overrides (satellite: SetLogLevel + injectable sink) ---

TEST(LoggingTest, SetLogLevelOverridesAndRestores) {
  const LogLevel original = SetLogLevel(LogLevel::kOff);
  EXPECT_EQ(GlobalLogLevel(), LogLevel::kOff);
  EXPECT_EQ(SetLogLevel(LogLevel::kDebug), LogLevel::kOff);  // returns previous effective
  EXPECT_EQ(GlobalLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, SinkCapturesFilteredLines) {
  const LogLevel original = SetLogLevel(LogLevel::kError);
  std::vector<std::string> captured;
  LogSink previous = SetLogSink(
      [&captured](LogLevel, const char*, int, const std::string& msg) {
        captured.push_back(msg);
      });
  SBT_LOG(Error) << "captured " << 42;
  SBT_LOG(Info) << "filtered out";  // below the level: never reaches the sink
  SetLogSink(std::move(previous));
  SetLogLevel(original);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0], "captured 42");
}

TEST(LoggingTest, SinkIsThreadSafe) {
  const LogLevel original = SetLogLevel(LogLevel::kError);
  std::atomic<int> lines{0};
  LogSink previous = SetLogSink(
      [&lines](LogLevel, const char*, int, const std::string&) {
        lines.fetch_add(1, std::memory_order_relaxed);
      });
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 100; ++i) {
        SBT_LOG(Error) << "line " << i;
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  SetLogSink(std::move(previous));
  SetLogLevel(original);
  EXPECT_EQ(lines.load(), 400);
}

}  // namespace
}  // namespace obs
}  // namespace sbt
