// Property-based tests on DESIGN.md's invariants: parameterized sweeps over sizes and
// distributions for the sort/aggregate kernels, lossless-compression fuzzing, and
// mutation-detection properties of the verifier (any single tampering of an honest audit
// stream is rejected).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>

#include "src/attest/compress.h"
#include "src/attest/verifier.h"
#include "src/common/rng.h"
#include "src/control/benchmarks.h"
#include "src/control/engine.h"
#include "src/control/harness.h"
#include "src/control/lifecycle.h"
#include "src/crypto/sha256.h"
#include "src/primitives/primitives.h"
#include "src/primitives/simd_kernels.h"
#include "src/primitives/vec_sort.h"
#include "src/server/edge_server.h"
#include "src/server/shard_router.h"
#include "tests/testing/testing.h"

namespace sbt {
namespace {

// --- sort kernel sweep: size x distribution, both implementations ------------------

struct SortCase {
  size_t n;
  int distribution;  // 0 uniform, 1 few-distinct, 2 sorted, 3 reverse, 4 sawtooth
};

class SortSweep : public ::testing::TestWithParam<SortCase> {};

TEST_P(SortSweep, MatchesStdSortBothImpls) {
  const SortCase c = GetParam();
  Xoshiro256 rng(c.n * 31 + c.distribution);
  std::vector<int64_t> data(c.n);
  for (size_t i = 0; i < c.n; ++i) {
    switch (c.distribution) {
      case 0:
        data[i] = static_cast<int64_t>(rng.Next());
        break;
      case 1:
        data[i] = static_cast<int64_t>(rng.NextBelow(7));
        break;
      case 2:
        data[i] = static_cast<int64_t>(i);
        break;
      case 3:
        data[i] = static_cast<int64_t>(c.n - i);
        break;
      default:
        data[i] = static_cast<int64_t>(i % 97);
        break;
    }
  }
  std::vector<int64_t> expected = data;
  std::sort(expected.begin(), expected.end());

  for (SortImpl impl : {SortImpl::kScalar, SortImpl::kVector}) {
    if (impl == SortImpl::kVector && !VectorSortSupported()) {
      continue;
    }
    std::vector<int64_t> work = data;
    std::vector<int64_t> scratch(c.n);
    SortI64(work, scratch, impl);
    EXPECT_EQ(work, expected) << "n=" << c.n << " dist=" << c.distribution;
  }
}

std::vector<SortCase> SortCases() {
  std::vector<SortCase> cases;
  // Sizes straddling the radix threshold (1<<16) and the in-register block sizes.
  for (size_t n : {3u, 64u, 2047u, 2048u, 65535u, 65536u, 65537u, 200000u}) {
    for (int d = 0; d < 5; ++d) {
      cases.push_back({n, d});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SortSweep, ::testing::ValuesIn(SortCases()));

// --- aggregation pipeline property: SumCnt o Sort == reference, across batch splits ----

class SplitInvariance : public ::testing::TestWithParam<int> {};

TEST_P(SplitInvariance, MergeOfPartialSortsEqualsGlobalSort) {
  // Splitting a window into k batches, sorting each, and MergeN-ing must equal sorting the
  // whole window at once — the runner's correctness depends on this.
  const int k = GetParam();
  TzPartitionConfig tz;
  tz.secure_dram_bytes = 32u << 20;
  tz.group_reserve_bytes = 32u << 20;
  SecureWorld world(tz);
  UArrayAllocator alloc(&world);
  PrimitiveContext ctx;
  ctx.alloc = &alloc;

  Xoshiro256 rng(k);
  std::vector<PackedKV> all;
  std::vector<const UArray*> sorted_parts;
  for (int part = 0; part < k; ++part) {
    const size_t n = 1000 + rng.NextBelow(2000);
    std::vector<PackedKV> kvs(n);
    for (auto& kv : kvs) {
      kv = PackKV(static_cast<uint32_t>(rng.NextBelow(300)),
                  static_cast<int32_t>(rng.Next32()));
    }
    all.insert(all.end(), kvs.begin(), kvs.end());
    auto arr = alloc.Create(sizeof(PackedKV), UArrayScope::kStreaming);
    ASSERT_TRUE(arr.ok());
    ASSERT_TRUE((*arr)->Append(kvs.data(), kvs.size() * sizeof(PackedKV)).ok());
    (*arr)->Produce();
    auto sorted = PrimSort(ctx, **arr);
    ASSERT_TRUE(sorted.ok());
    sorted_parts.push_back(*sorted);
  }
  auto merged = PrimMergeN(ctx, sorted_parts);
  ASSERT_TRUE(merged.ok());

  std::sort(all.begin(), all.end());
  auto span = (*merged)->Span<PackedKV>();
  ASSERT_EQ(span.size(), all.size());
  EXPECT_TRUE(std::equal(span.begin(), span.end(), all.begin()));

  // And the aggregate over the merge equals the aggregate over the reference.
  auto agg = PrimSumCnt(ctx, **merged);
  ASSERT_TRUE(agg.ok());
  std::map<uint32_t, std::pair<uint32_t, int64_t>> ref;
  for (PackedKV kv : all) {
    ref[UnpackKey(kv)].first += 1;
    ref[UnpackKey(kv)].second += UnpackValue(kv);
  }
  auto cells = (*agg)->Span<KeySumCount>();
  ASSERT_EQ(cells.size(), ref.size());
  size_t i = 0;
  for (const auto& [key, sc] : ref) {
    EXPECT_EQ(cells[i].key, key);
    EXPECT_EQ(cells[i].count, sc.first);
    EXPECT_EQ(cells[i].sum, sc.second);
    ++i;
  }
}

INSTANTIATE_TEST_SUITE_P(Splits, SplitInvariance, ::testing::Values(1, 2, 3, 5, 8, 16));

// --- compression robustness: random corruption never crashes, round trips always hold ----

TEST(CompressFuzz, RandomTruncationsFailCleanly) {
  Xoshiro256 rng(77);
  std::vector<AuditRecord> records;
  for (int i = 0; i < 500; ++i) {
    AuditRecord r;
    r.op = static_cast<PrimitiveOp>(10 + rng.NextBelow(20));
    r.ts_ms = static_cast<uint32_t>(i);
    r.inputs = {static_cast<uint32_t>(i)};
    r.outputs = {static_cast<uint32_t>(i + 1)};
    records.push_back(std::move(r));
  }
  const auto blob = EncodeAuditBatch(records);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t cut = rng.NextBelow(blob.size());
    std::vector<uint8_t> truncated(blob.begin(), blob.begin() + cut);
    auto decoded = DecodeAuditBatch(truncated);  // must not crash; may fail or decode a prefix
    (void)decoded;
  }
  // Bit flips: decode must either fail or produce *something* without crashing.
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> mutated = blob;
    mutated[rng.NextBelow(mutated.size())] ^= static_cast<uint8_t>(1u << rng.NextBelow(8));
    auto decoded = DecodeAuditBatch(mutated);
    (void)decoded;
  }
  SUCCEED();
}

TEST(CompressFuzz, RoundTripRandomRecordShapes) {
  Xoshiro256 rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<AuditRecord> records(rng.NextBelow(60));
    uint32_t id = 1;
    for (auto& r : records) {
      r.op = static_cast<PrimitiveOp>(rng.NextBelow(37));
      r.ts_ms = static_cast<uint32_t>(rng.NextBelow(1u << 30));
      r.stream = static_cast<uint16_t>(rng.NextBelow(4));
      for (uint64_t k = rng.NextBelow(4); k > 0; --k) {
        r.inputs.push_back(id++);
      }
      for (uint64_t k = rng.NextBelow(4); k > 0; --k) {
        r.outputs.push_back(id++);
        if (r.op == PrimitiveOp::kSegment) {
          r.win_nos.push_back(static_cast<uint16_t>(rng.NextBelow(100)));
        }
      }
      if (r.op == PrimitiveOp::kWatermark) {
        r.watermark = static_cast<uint32_t>(rng.NextBelow(1u << 31));
      }
      if (rng.NextBelow(3) == 0) {
        r.hints.push_back(AuditHint::Parallel(static_cast<uint32_t>(rng.NextBelow(512))));
      }
      if (rng.NextBelow(5) == 0) {
        r.hints.push_back(AuditHint::After(static_cast<uint32_t>(rng.NextBelow(id))));
      }
    }
    // Segment win_nos must align with outputs for round-trip equality of that field.
    for (auto& r : records) {
      if (r.op != PrimitiveOp::kSegment) {
        r.win_nos.clear();
      } else {
        r.win_nos.resize(r.outputs.size(), 0);
      }
    }
    const auto blob = EncodeAuditBatch(records);
    auto decoded = DecodeAuditBatch(blob);
    ASSERT_TRUE(decoded.ok()) << trial;
    EXPECT_EQ(*decoded, records) << trial;
  }
}

// --- verifier mutation property: every single tampering of an honest stream is caught ----

std::vector<AuditRecord> HonestStream() {
  // Generate a real session with the engine itself.
  HarnessOptions opts;
  opts.version = EngineVersion::kSbtClearIngress;
  opts.engine.secure_pool_mb = 64;
  opts.engine.knobs.worker_threads = 2;
  opts.generator.batch_events = 5000;
  opts.generator.num_windows = 2;
  opts.generator.workload.kind = WorkloadKind::kSynthetic;
  opts.generator.workload.events_per_window = 10000;
  opts.verify_audit = false;

  const Pipeline pipeline = MakeDistinct(1000);
  DataPlaneConfig cfg = MakeEngineConfig(opts.version, opts.engine);
  DataPlane dp(cfg);
  {
    Runner runner(&dp, pipeline, MakeRunnerConfig(opts.version, opts.engine));
    GeneratorConfig gen_cfg = opts.generator;
    Generator gen(gen_cfg);
    while (auto frame = gen.NextFrame()) {
      if (frame->is_watermark) {
        EXPECT_TRUE(runner.AdvanceWatermark(frame->watermark).ok());
      } else {
        EXPECT_TRUE(runner.IngestFrame(frame->bytes, 0, frame->ctr_offset).ok());
      }
    }
    runner.Drain();
  }
  std::vector<AuditRecord> records;
  dp.FlushAudit(&records);
  return records;
}

TEST(VerifierProperty, AnySingleRecordDeletionIsDetected) {
  const auto records = HonestStream();
  CloudVerifier verifier(MakeDistinct(1000).ToVerifierSpec());
  ASSERT_TRUE(verifier.Verify(records).correct);

  for (size_t i = 0; i < records.size(); ++i) {
    if (records[i].op == PrimitiveOp::kWatermark) {
      // Deleting a non-final watermark only worsens apparent freshness (a later watermark still
      // closes the window); record-stream tampering as such is prevented by the upload HMAC.
      // The replay targets control-plane misbehavior, so this deletion is out of its scope.
      continue;
    }
    auto tampered = records;
    tampered.erase(tampered.begin() + static_cast<long>(i));
    const auto report = verifier.Verify(tampered);
    EXPECT_FALSE(report.correct)
        << "deleting record " << i << " (" << PrimitiveOpName(records[i].op)
        << ") went undetected";
  }
}

TEST(VerifierProperty, AnySingleOpRetagIsDetected) {
  const auto records = HonestStream();
  CloudVerifier verifier(MakeDistinct(1000).ToVerifierSpec());
  Xoshiro256 rng(3);
  for (size_t i = 0; i < records.size(); ++i) {
    if (records[i].op == PrimitiveOp::kWatermark) {
      continue;  // watermark value, not op, is its integrity anchor
    }
    auto tampered = records;
    PrimitiveOp new_op;
    do {
      new_op = static_cast<PrimitiveOp>(10 + rng.NextBelow(25));
    } while (new_op == records[i].op);
    tampered[i].op = new_op;
    const auto report = verifier.Verify(tampered);
    EXPECT_FALSE(report.correct)
        << "retagging record " << i << " from " << PrimitiveOpName(records[i].op) << " to "
        << PrimitiveOpName(new_op) << " went undetected";
  }
}

// --- shard-router re-homing properties (elastic resize relies on both) -------------------

TEST(ShardRouterProperty, ReHomingMovesAtMostTheExpectedFraction) {
  // Jump consistent hashing: changing the shard count N -> N' relocates ~1/max(N, N') of the
  // keys — growth moves only the keys the new shard must receive, shrink only the evicted
  // shard's keys. Modulo reduction would reshuffle nearly everything.
  constexpr size_t kKeys = 8192;
  const std::pair<uint32_t, uint32_t> transitions[] = {{2, 3}, {4, 5}, {5, 4},
                                                       {8, 9}, {9, 8}, {16, 17}};
  for (const auto& [n_from, n_to] : transitions) {
    const ShardRouter from(n_from);
    const ShardRouter to(n_to);
    Xoshiro256 rng(n_from * 131 + n_to);
    size_t moved = 0;
    std::vector<size_t> load(n_to, 0);
    for (size_t i = 0; i < kKeys; ++i) {
      const TenantId tenant = static_cast<TenantId>(1 + rng.NextBelow(64));
      const uint32_t source = rng.Next32();
      const uint32_t a = from.Route(tenant, source);
      const uint32_t b = to.Route(tenant, source);
      ASSERT_LT(a, n_from);
      ASSERT_LT(b, n_to);
      EXPECT_EQ(from.Route(tenant, source), a);  // stable across calls
      moved += (a != b) ? 1 : 0;
      ++load[b];
    }
    const double expected = static_cast<double>(kKeys) / std::max(n_from, n_to);
    EXPECT_LT(moved, expected * 1.5) << n_from << " -> " << n_to << " moved too much";
    EXPECT_GT(moved, expected * 0.5) << n_from << " -> " << n_to << " moved implausibly few";
    // And the new placement stays balanced.
    for (uint32_t s = 0; s < n_to; ++s) {
      EXPECT_GT(load[s], kKeys / n_to / 2) << "shard " << s << " starved";
      EXPECT_LT(load[s], kKeys / n_to * 2) << "shard " << s << " hoards";
    }
  }
}

TEST(ShardRouterProperty, MultiStreamTenantsNeverSplitAcrossReHoming) {
  // A multi-stream (Join) tenant is tenant-homed: under EVERY shard count, all of its sources
  // land on one shard — a resize moves the tenant atomically, never splitting its streams.
  TenantRegistry registry;
  for (TenantId t = 1; t <= 12; ++t) {
    ASSERT_TRUE(registry
                    .Add(MakeTenantSpec(t, "join-" + std::to_string(t), MakeJoin(1000),
                                        1u << 20))
                    .ok());
  }
  for (const uint32_t shards : {2u, 3u, 5u, 8u}) {
    EdgeServerConfig cfg;
    cfg.num_shards = shards;
    EdgeServer server(cfg, registry);
    for (TenantId t = 1; t <= 12; ++t) {
      const uint32_t home = server.RouteOf(t, 0);
      for (uint32_t source = 1; source < 32; ++source) {
        ASSERT_EQ(server.RouteOf(t, source), home)
            << "tenant " << t << " split at " << shards << " shards";
      }
    }
  }
}

// --- fused-vs-unfused boundary equivalence -----------------------------------------------
//
// Command-buffer fusion changes how chains cross the TEE boundary (one Submit instead of one
// Invoke per step), and must change NOTHING else: egress blobs, the audit stream, and the
// verifier's replay verdict are byte-identical between the two modes. A single worker pins the
// task schedule so uArray ids line up across runs.

struct SessionArtifacts {
  std::vector<WindowResult> results;
  std::vector<AuditRecord> records;
  VerifyReport report;
  uint64_t task_errors = 0;
  uint64_t switch_entries = 0;
};

std::vector<AuditRecord> StripTimestamps(std::vector<AuditRecord> records) {
  for (AuditRecord& r : records) {
    r.ts_ms = 0;
  }
  return records;
}

SessionArtifacts RunBoundarySession(const Pipeline& pipeline, WorkloadKind kind,
                                    bool fuse_chains) {
  HarnessOptions opts;
  opts.version = EngineVersion::kSbtClearIngress;
  opts.engine.secure_pool_mb = 64;
  opts.generator.batch_events = 5000;
  opts.generator.num_windows = 3;
  opts.generator.workload.kind = kind;
  opts.generator.workload.events_per_window = 12000;

  DataPlaneConfig cfg = MakeEngineConfig(opts.version, opts.engine);
  DataPlane dp(cfg);
  SessionArtifacts out;
  {
    RunnerConfig rc;
    rc.knobs.worker_threads = 1;
    rc.knobs.fuse_chains = fuse_chains;
    Runner runner(&dp, pipeline, rc);
    Generator gen(opts.generator);
    while (auto frame = gen.NextFrame()) {
      if (frame->is_watermark) {
        EXPECT_TRUE(runner.AdvanceWatermark(frame->watermark).ok());
      } else {
        EXPECT_TRUE(runner.IngestFrame(frame->bytes, 0, frame->ctr_offset).ok());
      }
      // Drain per frame: byte-comparing two runs needs one deterministic schedule, and the
      // LIFO pickup order otherwise depends on main-thread/worker timing.
      runner.Drain();
    }
    out.results = runner.TakeResults();
    out.task_errors = runner.stats().task_errors;
  }
  std::sort(out.results.begin(), out.results.end(),
            [](const WindowResult& a, const WindowResult& b) {
              return a.window_index < b.window_index;
            });
  dp.FlushAudit(&out.records);
  out.switch_entries = dp.switch_stats().entries;
  out.report = CloudVerifier(pipeline.ToVerifierSpec()).Verify(out.records);
  return out;
}

void ExpectByteIdentical(const SessionArtifacts& fused, const SessionArtifacts& unfused) {
  EXPECT_EQ(fused.task_errors, 0u);
  EXPECT_EQ(unfused.task_errors, 0u);

  // Egress: ciphertext, MACs, keystream offsets, element counts.
  ASSERT_EQ(fused.results.size(), unfused.results.size());
  for (size_t i = 0; i < fused.results.size(); ++i) {
    const WindowResult& a = fused.results[i];
    const WindowResult& b = unfused.results[i];
    EXPECT_EQ(a.window_index, b.window_index);
    ASSERT_EQ(a.blobs.size(), b.blobs.size()) << "window " << a.window_index;
    for (size_t j = 0; j < a.blobs.size(); ++j) {
      EXPECT_EQ(a.blobs[j].ciphertext, b.blobs[j].ciphertext) << "window " << a.window_index;
      EXPECT_TRUE(DigestEqual(a.blobs[j].mac, b.blobs[j].mac)) << "window " << a.window_index;
      EXPECT_EQ(a.blobs[j].elems, b.blobs[j].elems);
      EXPECT_EQ(a.blobs[j].ctr_offset, b.blobs[j].ctr_offset);
    }
  }

  // Audit stream: record-identical modulo wall-clock timestamps.
  EXPECT_EQ(StripTimestamps(fused.records), StripTimestamps(unfused.records));

  // Verifier replay verdict.
  EXPECT_TRUE(fused.report.correct)
      << (fused.report.violations.empty() ? "" : fused.report.violations[0]);
  EXPECT_TRUE(unfused.report.correct)
      << (unfused.report.violations.empty() ? "" : unfused.report.violations[0]);
  EXPECT_EQ(fused.report.windows_verified, unfused.report.windows_verified);
  EXPECT_EQ(fused.report.hints_audited, unfused.report.hints_audited);

  // And the fusion actually fused: strictly fewer boundary crossings.
  EXPECT_LT(fused.switch_entries, unfused.switch_entries);
}

TEST(FusedEquivalence, DistinctPipelineIsByteIdentical) {
  const Pipeline p = MakeDistinct(1000);
  ExpectByteIdentical(RunBoundarySession(p, WorkloadKind::kTaxi, true),
                      RunBoundarySession(p, WorkloadKind::kTaxi, false));
}

TEST(FusedEquivalence, WinSumPipelineIsByteIdentical) {
  const Pipeline p = MakeWinSum(1000);
  ExpectByteIdentical(RunBoundarySession(p, WorkloadKind::kIntelLab, true),
                      RunBoundarySession(p, WorkloadKind::kIntelLab, false));
}

TEST(FusedEquivalence, PowerPipelineWithDeepCloseDagIsByteIdentical) {
  // Power's 7-stage window-close DAG fuses into a single submission; the replay must not be
  // able to tell.
  const Pipeline p = MakePower(1000);
  ExpectByteIdentical(RunBoundarySession(p, WorkloadKind::kPowerGrid, true),
                      RunBoundarySession(p, WorkloadKind::kPowerGrid, false));
}

TEST(FusedEquivalence, HoldsUnderInjectedWorldSwitchFaults) {
  // Seeded SMC faults abort and re-issue entries mid-session (including mid-Submit); they
  // burn cycles but must not change the executed dataflow.
  const Pipeline p = MakeDistinct(1000);
  const SessionArtifacts unfused = RunBoundarySession(p, WorkloadKind::kTaxi, false);
  testing::ScopedFailPoint fp("world_switch.fault",
                              testing::ScopedFailPoint::Seeded(/*seed=*/99, /*num=*/1,
                                                               /*den=*/8));
  const SessionArtifacts fused = RunBoundarySession(p, WorkloadKind::kTaxi, true);
  ExpectByteIdentical(fused, unfused);
}

// --- worker-count equivalence ------------------------------------------------------------
//
// Elastic intra-engine parallelism must be externally invisible: the audit hash chain (the
// WHOLE upload — raw bytes, compressed blob, MAC, chain position), the egress blobs, and the
// verifier's replay verdict are byte-identical for every worker_threads value. These sessions
// run free (no per-frame drain): workers genuinely race, execute chains out of order, and the
// ticket sequencing + watermark-ordered completion stage must put everything back in program
// order. logical_audit_timestamps replaces the wall clock so even record timestamps — and
// therefore the upload MACs — compare byte-for-byte.

struct WorkerSessionArtifacts {
  std::vector<WindowResult> results;
  AuditUpload upload;
  std::vector<AuditRecord> records;
  VerifyReport report;
  uint64_t task_errors = 0;
  uint64_t ingest_failures = 0;
};

WorkerSessionArtifacts RunWorkerSession(const Pipeline& pipeline, WorkloadKind kind,
                                        int worker_threads, bool fuse_chains = true,
                                        bool combine_submissions = true,
                                        bool lockfree_retire = true,
                                        bool drain_per_frame = false) {
  HarnessOptions opts;
  opts.version = EngineVersion::kSbtClearIngress;
  opts.engine.secure_pool_mb = 64;
  opts.generator.batch_events = 4000;
  opts.generator.num_windows = 3;
  opts.generator.workload.kind = kind;
  opts.generator.workload.events_per_window = 12000;

  DataPlaneConfig cfg = MakeEngineConfig(opts.version, opts.engine);
  cfg.logical_audit_timestamps = true;
  cfg.knobs.lockfree_retire = lockfree_retire;
  DataPlane dp(cfg);
  WorkerSessionArtifacts out;
  {
    RunnerConfig rc;
    rc.knobs.worker_threads = worker_threads;
    rc.knobs.fuse_chains = fuse_chains;
    rc.knobs.combine_submissions = combine_submissions;
    Runner runner(&dp, pipeline, rc);
    Generator gen(opts.generator);
    while (auto frame = gen.NextFrame()) {
      if (frame->is_watermark) {
        EXPECT_TRUE(runner.AdvanceWatermark(frame->watermark).ok());
      } else if (!runner.IngestFrame(frame->bytes, 0, frame->ctr_offset).ok()) {
        // Only the fault-injection properties may get here (counted and compared there);
        // everywhere else ExpectWorkerCountInvariant asserts zero.
        ++out.ingest_failures;
      }
      // NO drain by default: this is the schedule-independence property, not a pinned
      // schedule. The fault-injection properties drain per frame to pin the schedule so a
      // seeded fault stream hits both runs at identical points.
      if (drain_per_frame) {
        runner.Drain();
      }
    }
    runner.Drain();
    out.results = runner.TakeResults();
    out.task_errors = runner.stats().task_errors;
  }
  out.upload = dp.FlushAudit(&out.records);
  out.report = CloudVerifier(pipeline.ToVerifierSpec()).Verify(out.records);
  return out;
}

// Byte-compares everything externally visible — egress blobs, the audit chain (records, raw
// encoding, compressed blob, MAC, chain position), and the replay verdict shape — WITHOUT
// assuming the sessions were fault-free. The fault-equivalence properties use this directly.
void ExpectSameExternalArtifacts(const WorkerSessionArtifacts& a,
                                 const WorkerSessionArtifacts& b) {
  // Results arrive in watermark order from the completion stage: compare positionally.
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].window_index, b.results[i].window_index);
    ASSERT_EQ(a.results[i].blobs.size(), b.results[i].blobs.size());
    for (size_t j = 0; j < a.results[i].blobs.size(); ++j) {
      EXPECT_EQ(a.results[i].blobs[j].ciphertext, b.results[i].blobs[j].ciphertext);
      EXPECT_TRUE(DigestEqual(a.results[i].blobs[j].mac, b.results[i].blobs[j].mac));
      EXPECT_EQ(a.results[i].blobs[j].elems, b.results[i].blobs[j].elems);
      EXPECT_EQ(a.results[i].blobs[j].ctr_offset, b.results[i].blobs[j].ctr_offset);
    }
  }

  // The audit chain, bytes and all: same records, same raw encoding, same compressed blob,
  // same MAC, same chain position. Nothing about the schedule can leak into attestation.
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    const AuditRecord& ra = a.records[i];
    const AuditRecord& rb = b.records[i];
    EXPECT_EQ(ra.op, rb.op) << "record " << i;
    EXPECT_EQ(ra.ts_ms, rb.ts_ms) << "record " << i << " (" << PrimitiveOpName(ra.op) << ")";
    EXPECT_EQ(ra.inputs, rb.inputs) << "record " << i << " (" << PrimitiveOpName(ra.op) << ")";
    EXPECT_EQ(ra.outputs, rb.outputs)
        << "record " << i << " (" << PrimitiveOpName(ra.op) << ")";
    EXPECT_EQ(ra.win_nos, rb.win_nos) << "record " << i;
    EXPECT_EQ(ra.watermark, rb.watermark) << "record " << i;
    EXPECT_EQ(ra.stream, rb.stream) << "record " << i;
    ASSERT_EQ(ra.hints.size(), rb.hints.size()) << "record " << i;
    for (size_t h = 0; h < ra.hints.size(); ++h) {
      EXPECT_EQ(ra.hints[h].encoded, rb.hints[h].encoded)
          << "record " << i << " hint " << h << " (" << PrimitiveOpName(ra.op) << ")";
    }
  }
  EXPECT_EQ(a.upload.chain_seq, b.upload.chain_seq);
  EXPECT_TRUE(DigestEqual(a.upload.chain_prev, b.upload.chain_prev));
  EXPECT_EQ(a.upload.record_count, b.upload.record_count);
  EXPECT_EQ(a.upload.raw_bytes, b.upload.raw_bytes);
  EXPECT_EQ(a.upload.compressed, b.upload.compressed);
  EXPECT_TRUE(DigestEqual(a.upload.mac, b.upload.mac));

  EXPECT_EQ(a.report.correct, b.report.correct);
  EXPECT_EQ(a.report.windows_verified, b.report.windows_verified);
  EXPECT_EQ(a.report.hints_audited, b.report.hints_audited);
}

void ExpectWorkerCountInvariant(const WorkerSessionArtifacts& a,
                                const WorkerSessionArtifacts& b) {
  EXPECT_EQ(a.task_errors, 0u);
  EXPECT_EQ(b.task_errors, 0u);
  EXPECT_EQ(a.ingest_failures, 0u);
  EXPECT_EQ(b.ingest_failures, 0u);
  ExpectSameExternalArtifacts(a, b);
  EXPECT_TRUE(a.report.correct)
      << (a.report.violations.empty() ? "" : a.report.violations[0]);
  EXPECT_TRUE(b.report.correct)
      << (b.report.violations.empty() ? "" : b.report.violations[0]);
}

TEST(WorkerEquivalence, DistinctPipelineOneVsEightWorkers) {
  const Pipeline p = MakeDistinct(1000);
  ExpectWorkerCountInvariant(RunWorkerSession(p, WorkloadKind::kTaxi, 1),
                             RunWorkerSession(p, WorkloadKind::kTaxi, 8));
}

TEST(WorkerEquivalence, PowerPipelineDeepCloseDagOneVsEightWorkers) {
  const Pipeline p = MakePower(1000);
  ExpectWorkerCountInvariant(RunWorkerSession(p, WorkloadKind::kPowerGrid, 1),
                             RunWorkerSession(p, WorkloadKind::kPowerGrid, 8));
}

TEST(WorkerEquivalence, WinSumPipelineIntermediateWorkerCounts) {
  const Pipeline p = MakeWinSum(1000);
  const WorkerSessionArtifacts one = RunWorkerSession(p, WorkloadKind::kIntelLab, 1);
  ExpectWorkerCountInvariant(one, RunWorkerSession(p, WorkloadKind::kIntelLab, 2));
  ExpectWorkerCountInvariant(one, RunWorkerSession(p, WorkloadKind::kIntelLab, 4));
}

TEST(WorkerEquivalence, UnfusedBoundaryOneVsEightWorkers) {
  // The paper's call-per-primitive boundary under parallel workers: each chain step crosses
  // the TEE separately, still under one ticket — same invariant.
  const Pipeline p = MakeDistinct(1000);
  ExpectWorkerCountInvariant(
      RunWorkerSession(p, WorkloadKind::kTaxi, 1, /*fuse_chains=*/false),
      RunWorkerSession(p, WorkloadKind::kTaxi, 8, /*fuse_chains=*/false));
}

TEST(WorkerEquivalence, FusedVsUnfusedAtFourWorkers) {
  // Both axes at once: the boundary mode and the worker count are BOTH invisible.
  const Pipeline p = MakeDistinct(1000);
  ExpectWorkerCountInvariant(
      RunWorkerSession(p, WorkloadKind::kTaxi, 4, /*fuse_chains=*/true),
      RunWorkerSession(p, WorkloadKind::kTaxi, 4, /*fuse_chains=*/false));
}

TEST(WorkerEquivalence, HoldsUnderInjectedWorldSwitchFaults) {
  // Seeded SMC faults abort and re-issue TEE entries at schedule-dependent points — different
  // entries fault at different worker counts — but a fault burns cycles without touching the
  // dataflow, so the equivalence must survive.
  const Pipeline p = MakeDistinct(1000);
  const WorkerSessionArtifacts one = RunWorkerSession(p, WorkloadKind::kTaxi, 1);
  testing::ScopedFailPoint fp("world_switch.fault",
                              testing::ScopedFailPoint::Seeded(/*seed=*/42, /*num=*/1,
                                                               /*den=*/8));
  ExpectWorkerCountInvariant(one, RunWorkerSession(p, WorkloadKind::kTaxi, 8));
}

TEST(WorkerEquivalence, FlatCombiningOnVsOffIsByteIdentical) {
  // Flat combining re-times world switches (one session drains a whole ready set, possibly on
  // another worker's thread) but must not re-order anything externally visible: audit ids come
  // from ticket reservations, records commit in ticket order, and hints are fixed at
  // submission. Combining on/off — at several worker counts — is therefore byte-identical.
  const Pipeline p = MakeDistinct(1000);
  const WorkerSessionArtifacts off =
      RunWorkerSession(p, WorkloadKind::kTaxi, 4, /*fuse_chains=*/true,
                       /*combine_submissions=*/false);
  ExpectWorkerCountInvariant(off, RunWorkerSession(p, WorkloadKind::kTaxi, 2,
                                                   /*fuse_chains=*/true,
                                                   /*combine_submissions=*/true));
  ExpectWorkerCountInvariant(off, RunWorkerSession(p, WorkloadKind::kTaxi, 4,
                                                   /*fuse_chains=*/true,
                                                   /*combine_submissions=*/true));
  ExpectWorkerCountInvariant(off, RunWorkerSession(p, WorkloadKind::kTaxi, 8,
                                                   /*fuse_chains=*/true,
                                                   /*combine_submissions=*/true));
}

TEST(WorkerEquivalence, FlatCombiningOnVsOffUnfusedBoundary) {
  // Combining also fronts the call-per-primitive boundary (each step is a one-command chain on
  // the combining queue, still under the chain's ticket); same invariant.
  const Pipeline p = MakeDistinct(1000);
  ExpectWorkerCountInvariant(
      RunWorkerSession(p, WorkloadKind::kTaxi, 4, /*fuse_chains=*/false,
                       /*combine_submissions=*/false),
      RunWorkerSession(p, WorkloadKind::kTaxi, 4, /*fuse_chains=*/false,
                       /*combine_submissions=*/true));
}

TEST(WorkerEquivalence, FlatCombiningHoldsUnderInjectedWorldSwitchFaults) {
  // A combined batch's single entry can fault and re-issue like any other; faults burn cycles
  // on whoever is combining but never touch the dataflow.
  const Pipeline p = MakeDistinct(1000);
  const WorkerSessionArtifacts base =
      RunWorkerSession(p, WorkloadKind::kTaxi, 1, /*fuse_chains=*/true,
                       /*combine_submissions=*/false);
  testing::ScopedFailPoint fp("world_switch.fault",
                              testing::ScopedFailPoint::Seeded(/*seed=*/42, /*num=*/1,
                                                               /*den=*/8));
  ExpectWorkerCountInvariant(base, RunWorkerSession(p, WorkloadKind::kTaxi, 8,
                                                    /*fuse_chains=*/true,
                                                    /*combine_submissions=*/true));
}

// --- lock-free retire equivalence --------------------------------------------------------
//
// The lock-free ticket ring (bounded MPSC reorder buffer, per-worker slot staging, frontier
// batch-commit) replaces the seq_mu_-guarded std::map. The legacy locked path stays compiled
// as the reference implementation, and nothing about the swap may be externally visible: the
// audit chain bytes, upload MAC, egress blobs, and replay verdicts must match the locked path
// bit for bit at every worker count, every boundary mode, and under injected faults.

WorkerSessionArtifacts RunLocked(const Pipeline& p, WorkloadKind kind, int workers,
                                 bool fuse = true, bool combine = true) {
  return RunWorkerSession(p, kind, workers, fuse, combine, /*lockfree_retire=*/false);
}

TEST(LockfreeRetireEquivalence, LockedVsLockfreeAcrossWorkerCounts) {
  const Pipeline p = MakeDistinct(1000);
  const WorkerSessionArtifacts locked = RunLocked(p, WorkloadKind::kTaxi, 1);
  for (const int workers : {1, 2, 4, 8}) {
    ExpectWorkerCountInvariant(locked, RunWorkerSession(p, WorkloadKind::kTaxi, workers));
  }
}

TEST(LockfreeRetireEquivalence, PowerPipelineDeepCloseDag) {
  // Power's 7-stage close DAG produces the longest per-ticket record vectors: the heaviest
  // load on the slot staging and the frontier batch-commit.
  const Pipeline p = MakePower(1000);
  ExpectWorkerCountInvariant(RunLocked(p, WorkloadKind::kPowerGrid, 1),
                             RunWorkerSession(p, WorkloadKind::kPowerGrid, 8));
}

TEST(LockfreeRetireEquivalence, FusedAndCombinedBoundaryModes) {
  // The retire path composes with both boundary optimizations: call-per-primitive, fused
  // chains, and flat-combined submissions all stage records under the same tickets.
  const Pipeline p = MakeDistinct(1000);
  const std::pair<bool, bool> modes[] = {{false, false}, {true, true}, {false, true}};
  for (const auto& [fuse, combine] : modes) {
    ExpectWorkerCountInvariant(
        RunLocked(p, WorkloadKind::kTaxi, 4, fuse, combine),
        RunWorkerSession(p, WorkloadKind::kTaxi, 4, fuse, combine));
  }
}

TEST(LockfreeRetireEquivalence, HoldsUnderInjectedWorldSwitchFaults) {
  // Seeded SMC faults abort and re-issue entries at schedule-dependent points; they burn
  // cycles on the lock-free path's workers but must never touch the committed order.
  const Pipeline p = MakeDistinct(1000);
  const WorkerSessionArtifacts locked = RunLocked(p, WorkloadKind::kTaxi, 1);
  testing::ScopedFailPoint fp("world_switch.fault",
                              testing::ScopedFailPoint::Seeded(/*seed=*/57, /*num=*/1,
                                                               /*den=*/8));
  ExpectWorkerCountInvariant(locked, RunWorkerSession(p, WorkloadKind::kTaxi, 8));
}

TEST(LockfreeRetireEquivalence, SeededAllocFaultsFailIdentically) {
  // Secure-DRAM exhaustion fails the chain (kept from the ingress-hardening PR). With one
  // worker and a per-frame drain the schedule — and therefore the seeded fault sequence — is
  // pinned, so the locked and lock-free paths must fail the SAME chains and still produce
  // bit-identical artifacts, errors and all: a failed ticket retires empty through the ring
  // exactly as it did through the map.
  const Pipeline p = MakeDistinct(1000);
  const auto run = [&](bool lockfree) {
    testing::ScopedFailPoint fp("secure_world.alloc_frame",
                                testing::ScopedFailPoint::Seeded(/*seed=*/2026, /*num=*/1,
                                                                 /*den=*/7));
    return RunWorkerSession(p, WorkloadKind::kTaxi, 1, /*fuse_chains=*/true,
                            /*combine_submissions=*/true, lockfree,
                            /*drain_per_frame=*/true);
  };
  const WorkerSessionArtifacts locked = run(false);
  const WorkerSessionArtifacts lockfree = run(true);
  EXPECT_GT(locked.task_errors + locked.ingest_failures, 0u) << "p=1/7 over many draws";
  EXPECT_EQ(locked.task_errors, lockfree.task_errors);
  EXPECT_EQ(locked.ingest_failures, lockfree.ingest_failures);
  ExpectSameExternalArtifacts(locked, lockfree);
}

TEST(LockfreeRetireEquivalence, CheckpointAtRingFrontierIsByteIdentical) {
  // A checkpoint may only seal once the reorder ring is fully committed (frontier == next
  // ticket, open_tickets() == 0). Both retire paths must quiesce to the same frontier
  // mid-stream and flush the same chain link into the seal.
  const Pipeline p = MakeDistinct(1000);
  const auto run = [&](bool lockfree, int workers) {
    HarnessOptions opts;
    opts.version = EngineVersion::kSbtClearIngress;
    opts.engine.secure_pool_mb = 64;
    opts.generator.batch_events = 4000;
    opts.generator.num_windows = 3;
    opts.generator.workload.kind = WorkloadKind::kTaxi;
    opts.generator.workload.events_per_window = 12000;

    DataPlaneConfig cfg = MakeEngineConfig(opts.version, opts.engine);
    cfg.logical_audit_timestamps = true;
    cfg.knobs.lockfree_retire = lockfree;
    DataPlane dp(cfg);
    RunnerConfig rc;
    rc.knobs.worker_threads = workers;
    Runner runner(&dp, p, rc);
    Generator gen(opts.generator);
    int frames = 0;
    while (auto frame = gen.NextFrame()) {
      if (frame->is_watermark) {
        EXPECT_TRUE(runner.AdvanceWatermark(frame->watermark).ok());
      } else {
        EXPECT_TRUE(runner.IngestFrame(frame->bytes, 0, frame->ctr_offset).ok());
      }
      if (++frames == 5) {
        break;  // checkpoint mid-stream: tickets in flight, ring hot
      }
    }
    std::vector<WindowResult> results;
    auto bundle = EngineLifecycle(&dp, &runner).Checkpoint({}, &results);
    EXPECT_TRUE(bundle.ok()) << bundle.status().ToString();
    EXPECT_EQ(dp.open_tickets(), 0u) << "seal before the commit frontier caught up";
    return std::pair<AuditUpload, std::vector<WindowResult>>(
        bundle.ok() ? bundle->audit : AuditUpload{}, std::move(results));
  };
  const auto [locked_audit, locked_results] = run(false, 1);
  for (const int workers : {1, 4}) {
    const auto [audit, results] = run(true, workers);
    EXPECT_EQ(locked_audit.chain_seq, audit.chain_seq);
    EXPECT_TRUE(DigestEqual(locked_audit.chain_prev, audit.chain_prev));
    EXPECT_EQ(locked_audit.record_count, audit.record_count);
    EXPECT_EQ(locked_audit.raw_bytes, audit.raw_bytes);
    EXPECT_EQ(locked_audit.compressed, audit.compressed);
    EXPECT_TRUE(DigestEqual(locked_audit.mac, audit.mac));
    ASSERT_EQ(locked_results.size(), results.size());
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_EQ(locked_results[i].blobs.size(), results[i].blobs.size());
      for (size_t j = 0; j < results[i].blobs.size(); ++j) {
        EXPECT_EQ(locked_results[i].blobs[j].ciphertext, results[i].blobs[j].ciphertext);
      }
    }
  }
}

// --- SIMD kernel byte-equivalence --------------------------------------------------------
//
// The vectorized inner loops (simd_kernels.h) claim bit-identity with their scalar
// references: compacted elements are bit-copies and integer sums reassociate losslessly.
// Sweep every level the host supports against the scalar output on randomized inputs whose
// sizes straddle the vector widths and chunk boundaries, including the cross-chunk carries.

class ForcedSimdLevel {
 public:
  explicit ForcedSimdLevel(simd::SimdLevel level) { simd::ForceLevelForTest(level); }
  ~ForcedSimdLevel() { simd::ClearForcedLevelForTest(); }
};

TEST(SimdKernelEquivalence, AllLevelsMatchScalarReference) {
  Xoshiro256 rng(4242);
  const simd::SimdLevel levels[] = {simd::SimdLevel::kSse2, simd::SimdLevel::kAvx2};
  for (int trial = 0; trial < 40; ++trial) {
    const size_t n = rng.NextBelow(600) + (trial < 8 ? trial : 0);  // hit tiny sizes too

    std::vector<Event> events(n);
    for (Event& e : events) {
      e.ts_ms = static_cast<EventTimeMs>(rng.NextBelow(1u << 20));
      e.key = static_cast<uint32_t>(rng.NextBelow(64));
      e.value = static_cast<int32_t>(rng.Next32());
    }
    const int32_t lo = static_cast<int32_t>(rng.Next32() % 1000) - 500;
    const int32_t hi = lo + static_cast<int32_t>(rng.NextBelow(1u << 30));

    std::vector<int64_t> sorted(n);
    for (int64_t& v : sorted) {
      v = static_cast<int64_t>(rng.NextBelow(40)) - 20;  // heavy duplication
    }
    std::sort(sorted.begin(), sorted.end());
    std::vector<int64_t> packed(n);
    for (int64_t& v : packed) {
      v = PackKV(static_cast<uint32_t>(rng.NextBelow(30)),
                 static_cast<int32_t>(rng.Next32()));
    }
    std::sort(packed.begin(), packed.end());
    const int64_t prev = sorted.empty() ? 0 : sorted[0];
    const uint32_t prev_key = packed.empty() ? 0 : UnpackKey(packed[0]);

    // Scalar reference for every kernel, including the carry-in variants.
    std::vector<Event> ref_filtered(n);
    std::vector<int64_t> ref_dedup(n), ref_dedup_carry(n);
    std::vector<uint32_t> ref_unique(n), ref_unique_carry(n);
    size_t ref_nf, ref_nd, ref_ndc, ref_nu, ref_nuc;
    int64_t ref_sum_events, ref_sum_i64;
    {
      ForcedSimdLevel forced(simd::SimdLevel::kScalar);
      ref_nf = simd::FilterBandEvents(events.data(), n, lo, hi, ref_filtered.data());
      ref_sum_events = simd::SumEventValues(events.data(), n);
      ref_sum_i64 = simd::SumI64(sorted.data(), n);
      ref_nd = simd::DedupI64(sorted.data(), n, nullptr, ref_dedup.data());
      ref_ndc = simd::DedupI64(sorted.data(), n, &prev, ref_dedup_carry.data());
      ref_nu = simd::UniqueKeysPacked(packed.data(), n, nullptr, ref_unique.data());
      ref_nuc = simd::UniqueKeysPacked(packed.data(), n, &prev_key, ref_unique_carry.data());
    }

    for (const simd::SimdLevel level : levels) {
      if (level > simd::HostMaxLevel()) {
        continue;  // scalar-forced builds and pre-AVX2 hosts sweep what they can run
      }
      ForcedSimdLevel forced(level);
      std::vector<Event> filtered(n);
      EXPECT_EQ(simd::FilterBandEvents(events.data(), n, lo, hi, filtered.data()), ref_nf);
      EXPECT_EQ(std::memcmp(filtered.data(), ref_filtered.data(), ref_nf * sizeof(Event)), 0)
          << "level=" << simd::LevelName(level) << " n=" << n;
      EXPECT_EQ(simd::SumEventValues(events.data(), n), ref_sum_events);
      EXPECT_EQ(simd::SumI64(sorted.data(), n), ref_sum_i64);

      std::vector<int64_t> dedup(n);
      EXPECT_EQ(simd::DedupI64(sorted.data(), n, nullptr, dedup.data()), ref_nd);
      EXPECT_TRUE(std::equal(dedup.begin(), dedup.begin() + ref_nd, ref_dedup.begin()));
      EXPECT_EQ(simd::DedupI64(sorted.data(), n, &prev, dedup.data()), ref_ndc);
      EXPECT_TRUE(std::equal(dedup.begin(), dedup.begin() + ref_ndc, ref_dedup_carry.begin()));

      std::vector<uint32_t> unique(n);
      EXPECT_EQ(simd::UniqueKeysPacked(packed.data(), n, nullptr, unique.data()), ref_nu);
      EXPECT_TRUE(std::equal(unique.begin(), unique.begin() + ref_nu, ref_unique.begin()));
      EXPECT_EQ(simd::UniqueKeysPacked(packed.data(), n, &prev_key, unique.data()), ref_nuc);
      EXPECT_TRUE(
          std::equal(unique.begin(), unique.begin() + ref_nuc, ref_unique_carry.begin()));
    }
  }
}

TEST(SimdKernelEquivalence, ChunkedRunsMatchWholeRuns) {
  // The primitives feed these kernels in fixed-size chunks with carries; splitting at any
  // point with the carry threaded through must equal the unsplit run.
  Xoshiro256 rng(99);
  const size_t n = 1000;
  std::vector<int64_t> sorted(n);
  for (int64_t& v : sorted) {
    v = static_cast<int64_t>(rng.NextBelow(60));
  }
  std::sort(sorted.begin(), sorted.end());

  std::vector<int64_t> whole(n);
  const size_t n_whole = simd::DedupI64(sorted.data(), n, nullptr, whole.data());
  for (const size_t cut : {size_t{1}, size_t{7}, size_t{128}, size_t{999}}) {
    std::vector<int64_t> parts(n);
    const size_t a = simd::DedupI64(sorted.data(), cut, nullptr, parts.data());
    const int64_t carry = sorted[cut - 1];
    const size_t b = simd::DedupI64(sorted.data() + cut, n - cut, &carry, parts.data() + a);
    ASSERT_EQ(a + b, n_whole) << "cut=" << cut;
    EXPECT_TRUE(std::equal(parts.begin(), parts.begin() + n_whole, whole.begin()));
  }
}

TEST(VerifierProperty, ReplayedSessionsAreIndependent) {
  const auto records = HonestStream();
  CloudVerifier verifier(MakeDistinct(1000).ToVerifierSpec());
  const auto r1 = verifier.Verify(records);
  const auto r2 = verifier.Verify(records);
  EXPECT_EQ(r1.correct, r2.correct);
  EXPECT_EQ(r1.windows_verified, r2.windows_verified);
  EXPECT_EQ(r1.freshness.size(), r2.freshness.size());
}

}  // namespace
}  // namespace sbt
