// Tests for attestation: bitstream/huffman/columnar-compression losslessness, and the cloud
// verifier's symbolic replay (accepts honest streams, flags each tampering class).

#include <gtest/gtest.h>

#include <vector>

#include "src/attest/audit_record.h"
#include "src/attest/bitstream.h"
#include "src/attest/compress.h"
#include "src/attest/huffman.h"
#include "src/attest/verifier.h"
#include "src/common/rng.h"

namespace sbt {
namespace {

// --- bitstream -----------------------------------------------------------------

TEST(BitstreamTest, WriteReadRoundTrip) {
  BitWriter w;
  w.Write(0b101, 3);
  w.Write(0xff, 8);
  w.Write(1, 1);
  w.Write(0x1234, 16);
  const auto bytes = w.Finish();
  BitReader r(bytes);
  EXPECT_EQ(*r.Read(3), 0b101u);
  EXPECT_EQ(*r.Read(8), 0xffu);
  EXPECT_EQ(*r.Read(1), 1u);
  EXPECT_EQ(*r.Read(16), 0x1234u);
}

TEST(BitstreamTest, ReadPastEndFails) {
  BitWriter w;
  w.Write(1, 1);
  const auto bytes = w.Finish();
  BitReader r(bytes);
  EXPECT_TRUE(r.Read(8).ok());  // padding bits readable within the byte
  EXPECT_FALSE(r.Read(1).ok());
}

TEST(VarintTest, RoundTripAcrossMagnitudes) {
  std::vector<uint8_t> buf;
  std::vector<uint64_t> values = {0, 1, 127, 128, 300, 1u << 20, 0xffffffffull, ~0ull};
  for (uint64_t v : values) {
    PutVarint(buf, v);
  }
  size_t pos = 0;
  for (uint64_t v : values) {
    auto got = GetVarint(buf, &pos);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(VarintTest, TruncatedFails) {
  std::vector<uint8_t> buf = {0x80};  // continuation without terminator
  size_t pos = 0;
  EXPECT_FALSE(GetVarint(buf, &pos).ok());
}

TEST(ZigZagTest, RoundTrip) {
  for (int64_t v : std::vector<int64_t>{0, 1, -1, 100, -100, INT64_MAX, INT64_MIN}) {
    EXPECT_EQ(UnZigZag(ZigZag(v)), v);
  }
}

// --- huffman --------------------------------------------------------------------

TEST(HuffmanTest, EmptyInput) {
  const auto block = HuffmanEncode({});
  auto decoded = HuffmanDecode(block);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(HuffmanTest, SingleDistinctSymbol) {
  std::vector<uint16_t> symbols(1000, 42);
  const auto block = HuffmanEncode(symbols);
  auto decoded = HuffmanDecode(block);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, symbols);
  // 1000 one-bit codes -> ~125 bytes payload.
  EXPECT_LT(block.size(), 200u);
}

TEST(HuffmanTest, SkewedDistributionCompresses) {
  Xoshiro256 rng(5);
  std::vector<uint16_t> symbols;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t r = rng.NextBelow(100);
    symbols.push_back(r < 80 ? 7 : (r < 95 ? 13 : static_cast<uint16_t>(rng.NextBelow(30))));
  }
  const auto block = HuffmanEncode(symbols);
  auto decoded = HuffmanDecode(block);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, symbols);
  EXPECT_LT(block.size(), symbols.size());  // < 8 bits/symbol on a skewed stream
}

TEST(HuffmanTest, RandomRoundTrips) {
  Xoshiro256 rng(6);
  for (int round = 0; round < 30; ++round) {
    std::vector<uint16_t> symbols(rng.NextBelow(3000));
    for (auto& s : symbols) {
      s = static_cast<uint16_t>(rng.NextBelow(1 + rng.NextBelow(500)));
    }
    const auto block = HuffmanEncode(symbols);
    auto decoded = HuffmanDecode(block);
    ASSERT_TRUE(decoded.ok()) << round;
    EXPECT_EQ(*decoded, symbols) << round;
  }
}

TEST(HuffmanTest, CorruptBlockFailsCleanly) {
  std::vector<uint16_t> symbols(100, 9);
  symbols.push_back(10);
  auto block = HuffmanEncode(symbols);
  block.resize(block.size() / 2);  // truncate
  EXPECT_FALSE(HuffmanDecode(block).ok());
}

// --- columnar audit compression -----------------------------------------------

// Deterministic lane-spreading helper for synthetic hints.
size_t o_hash(size_t i) { return (i * 2654435761u) % 8; }

std::vector<AuditRecord> SyntheticRecords(size_t n, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<AuditRecord> records;
  uint32_t next_id = 1;
  uint32_t ts = 0;
  for (size_t i = 0; i < n; ++i) {
    AuditRecord r;
    ts += static_cast<uint32_t>(rng.NextBelow(5));
    r.ts_ms = ts;
    const uint64_t kind = rng.NextBelow(10);
    if (kind == 0) {
      r.op = PrimitiveOp::kIngress;
      r.outputs = {next_id++};
    } else if (kind == 1) {
      r.op = PrimitiveOp::kWatermark;
      r.watermark = ts * 10;
    } else if (kind == 2) {
      r.op = PrimitiveOp::kSegment;
      r.inputs = {next_id - 1};
      for (int o = 0; o < 3; ++o) {
        r.outputs.push_back(next_id++);
        r.win_nos.push_back(static_cast<uint16_t>(i / 50 + o));
      }
      r.hints.push_back(AuditHint::Parallel(static_cast<uint32_t>(o_hash(i))));
    } else {
      r.op = (kind < 6) ? PrimitiveOp::kSort : PrimitiveOp::kSumCnt;
      r.inputs = {next_id - 1};
      r.outputs = {next_id++};
      if (kind == 3) {
        r.hints.push_back(AuditHint::After(next_id - 2));
      }
    }
    r.stream = static_cast<uint16_t>(rng.NextBelow(2));
    records.push_back(std::move(r));
  }
  return records;
}

TEST(CompressTest, RoundTripEmpty) {
  const auto blob = EncodeAuditBatch({});
  auto decoded = DecodeAuditBatch(blob);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(CompressTest, RoundTripSynthetic) {
  const auto records = SyntheticRecords(2000, 17);
  const auto blob = EncodeAuditBatch(records);
  auto decoded = DecodeAuditBatch(blob);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, records);
}

TEST(CompressTest, AchievesPaperLikeRatio) {
  // The paper reports 5x-6.7x on real record streams; bench/fig12_audit_compress measures that
  // on actual engine output. This synthetic stream is deliberately noisier (random ops, streams
  // and hints), so require a slightly lower floor here.
  const auto records = SyntheticRecords(5000, 23);
  const auto blob = EncodeAuditBatch(records);
  const size_t raw = RawAuditBatchBytes(records);
  EXPECT_GT(raw, 0u);
  const double ratio = static_cast<double>(raw) / static_cast<double>(blob.size());
  EXPECT_GE(ratio, 3.5) << "raw=" << raw << " compressed=" << blob.size();
}

TEST(CompressTest, CorruptBlobFailsCleanly) {
  const auto records = SyntheticRecords(100, 3);
  auto blob = EncodeAuditBatch(records);
  blob.resize(blob.size() - 5);
  EXPECT_FALSE(DecodeAuditBatch(blob).ok());
}

// --- verifier --------------------------------------------------------------------

// A small honest session: one batch segmented into two windows; window 0 closed and fully
// processed; window 1 in flight.
std::vector<AuditRecord> HonestSession() {
  std::vector<AuditRecord> r;
  r.push_back({.op = PrimitiveOp::kIngress, .ts_ms = 1, .outputs = {1}});
  r.push_back({.op = PrimitiveOp::kSegment,
               .ts_ms = 2,
               .inputs = {1},
               .outputs = {10, 11},
               .win_nos = {0, 1}});
  r.push_back({.op = PrimitiveOp::kSort, .ts_ms = 3, .inputs = {10}, .outputs = {20}});
  r.push_back({.op = PrimitiveOp::kSort, .ts_ms = 4, .inputs = {11}, .outputs = {21}});
  r.push_back({.op = PrimitiveOp::kWatermark, .ts_ms = 50, .watermark = 1000});
  r.push_back({.op = PrimitiveOp::kMergeN, .ts_ms = 55, .inputs = {20}, .outputs = {30}});
  r.push_back({.op = PrimitiveOp::kSum, .ts_ms = 60, .inputs = {30}, .outputs = {31}});
  r.push_back({.op = PrimitiveOp::kEgress, .ts_ms = 80, .inputs = {31}});
  return r;
}

VerifierPipelineSpec HonestSpec() {
  VerifierPipelineSpec spec;
  spec.window_size_ms = 1000;
  spec.per_batch_chain = {PrimitiveOp::kSort};
  spec.per_window_stages = {
      WindowStage{.op = PrimitiveOp::kMergeN, .input_stages = {-1}},
      WindowStage{.op = PrimitiveOp::kSum, .input_stages = {0}},
  };
  return spec;
}

TEST(VerifierTest, AcceptsHonestSession) {
  CloudVerifier verifier(HonestSpec());
  const auto report = verifier.Verify(HonestSession());
  EXPECT_TRUE(report.correct) << (report.violations.empty() ? "" : report.violations[0]);
  EXPECT_EQ(report.windows_verified, 1u);
  ASSERT_EQ(report.freshness.size(), 1u);
  EXPECT_EQ(report.freshness[0].delay_ms, 30u);  // egress 80 - watermark 50
  EXPECT_EQ(report.max_delay_ms, 30u);
}

TEST(VerifierTest, DetectsDroppedResult) {
  auto records = HonestSession();
  records.pop_back();  // drop the egress
  CloudVerifier verifier(HonestSpec());
  const auto report = verifier.Verify(records);
  EXPECT_FALSE(report.correct);
}

TEST(VerifierTest, DetectsUnprocessedWindowData) {
  auto records = HonestSession();
  // Remove the Sum step: window 0's MergeN output stalls.
  records.erase(records.begin() + 6);
  CloudVerifier verifier(HonestSpec());
  const auto report = verifier.Verify(records);
  EXPECT_FALSE(report.correct);
}

TEST(VerifierTest, DetectsPartialData) {
  auto records = HonestSession();
  // The MergeN "forgets" contribution 20 and merges a fabricated id instead.
  records[5].inputs = {99};
  records.insert(records.begin() + 5,
                 AuditRecord{.op = PrimitiveOp::kIngress, .ts_ms = 54, .outputs = {99}});
  CloudVerifier verifier(HonestSpec());
  const auto report = verifier.Verify(records);
  EXPECT_FALSE(report.correct);
}

TEST(VerifierTest, DetectsWrongOperatorOrder) {
  auto records = HonestSession();
  records[2].op = PrimitiveOp::kSample;  // declared Sort, executed Sample
  CloudVerifier verifier(HonestSpec());
  const auto report = verifier.Verify(records);
  EXPECT_FALSE(report.correct);
}

TEST(VerifierTest, DetectsFabricatedReference) {
  auto records = HonestSession();
  records[6].inputs.push_back(0xdead);  // Sum consumes an id nobody produced
  CloudVerifier verifier(HonestSpec());
  const auto report = verifier.Verify(records);
  EXPECT_FALSE(report.correct);
}

TEST(VerifierTest, DetectsDoubleProduction) {
  auto records = HonestSession();
  records.push_back({.op = PrimitiveOp::kIngress, .ts_ms = 90, .outputs = {20}});
  CloudVerifier verifier(HonestSpec());
  const auto report = verifier.Verify(records);
  EXPECT_FALSE(report.correct);
}

TEST(VerifierTest, DetectsEgressOfUndeclaredData) {
  auto records = HonestSession();
  // Exfiltrate the raw sorted window-1 data (never reached the declared egress stage).
  records.push_back({.op = PrimitiveOp::kEgress, .ts_ms = 95, .inputs = {21}});
  CloudVerifier verifier(HonestSpec());
  const auto report = verifier.Verify(records);
  EXPECT_FALSE(report.correct);
}

TEST(VerifierTest, DetectsProcessingBeforeWatermark) {
  auto records = HonestSession();
  // Window 1 is processed although no watermark closed it.
  records.push_back({.op = PrimitiveOp::kMergeN, .ts_ms = 90, .inputs = {21}, .outputs = {40}});
  CloudVerifier verifier(HonestSpec());
  const auto report = verifier.Verify(records);
  EXPECT_FALSE(report.correct);
}

TEST(VerifierTest, IncompleteSessionToleratesInFlightWork) {
  auto records = HonestSession();
  records.pop_back();  // egress missing, but session marked incomplete
  CloudVerifier verifier(HonestSpec());
  const auto report = verifier.Verify(records, /*session_complete=*/false);
  EXPECT_TRUE(report.correct) << (report.violations.empty() ? "" : report.violations[0]);
}

TEST(VerifierTest, CountsHints) {
  auto records = HonestSession();
  records[2].hints.push_back(AuditHint::After(10));
  records[3].hints.push_back(AuditHint::Parallel(1));
  CloudVerifier verifier(HonestSpec());
  const auto report = verifier.Verify(records);
  EXPECT_EQ(report.hints_audited, 2u);
}

TEST(VerifierTest, MultiStreamJoinSession) {
  // Two streams, one window each side, joined after the watermark.
  std::vector<AuditRecord> r;
  r.push_back({.op = PrimitiveOp::kIngress, .ts_ms = 1, .outputs = {1}, .stream = 0});
  r.push_back({.op = PrimitiveOp::kIngress, .ts_ms = 1, .outputs = {2}, .stream = 1});
  r.push_back({.op = PrimitiveOp::kSegment, .ts_ms = 2, .inputs = {1}, .outputs = {10},
               .win_nos = {0}, .stream = 0});
  r.push_back({.op = PrimitiveOp::kSegment, .ts_ms = 2, .inputs = {2}, .outputs = {11},
               .win_nos = {0}, .stream = 1});
  r.push_back({.op = PrimitiveOp::kSort, .ts_ms = 3, .inputs = {10}, .outputs = {20},
               .stream = 0});
  r.push_back({.op = PrimitiveOp::kSort, .ts_ms = 3, .inputs = {11}, .outputs = {21},
               .stream = 1});
  r.push_back({.op = PrimitiveOp::kWatermark, .ts_ms = 10, .watermark = 1000});
  r.push_back({.op = PrimitiveOp::kMergeN, .ts_ms = 11, .inputs = {20}, .outputs = {30},
               .stream = 0});
  r.push_back({.op = PrimitiveOp::kMergeN, .ts_ms = 11, .inputs = {21}, .outputs = {31},
               .stream = 1});
  r.push_back({.op = PrimitiveOp::kJoin, .ts_ms = 12, .inputs = {30, 31}, .outputs = {40}});
  r.push_back({.op = PrimitiveOp::kEgress, .ts_ms = 13, .inputs = {40}});

  VerifierPipelineSpec spec;
  spec.window_size_ms = 1000;
  spec.per_batch_chain = {PrimitiveOp::kSort};
  spec.per_window_stages = {
      WindowStage{.op = PrimitiveOp::kMergeN, .input_stages = {-1}, .stream_filter = 0},
      WindowStage{.op = PrimitiveOp::kMergeN, .input_stages = {-1}, .stream_filter = 1},
      WindowStage{.op = PrimitiveOp::kJoin, .input_stages = {0, 1}},
  };
  CloudVerifier verifier(spec);
  const auto report = verifier.Verify(r);
  EXPECT_TRUE(report.correct) << (report.violations.empty() ? "" : report.violations[0]);
  EXPECT_EQ(report.windows_verified, 1u);
}

}  // namespace
}  // namespace sbt
