// Tests for attestation: bitstream/huffman/columnar-compression losslessness, and the cloud
// verifier's symbolic replay (accepts honest streams, flags each tampering class).

#include <gtest/gtest.h>

#include <vector>

#include "src/attest/audit_record.h"
#include "src/attest/bitstream.h"
#include "src/attest/compress.h"
#include "src/attest/huffman.h"
#include "src/attest/verifier.h"
#include "src/common/rng.h"
#include "tests/testing/testing.h"

namespace sbt {
namespace {

// --- bitstream -----------------------------------------------------------------

TEST(BitstreamTest, WriteReadRoundTrip) {
  BitWriter w;
  w.Write(0b101, 3);
  w.Write(0xff, 8);
  w.Write(1, 1);
  w.Write(0x1234, 16);
  const auto bytes = w.Finish();
  BitReader r(bytes);
  EXPECT_EQ(*r.Read(3), 0b101u);
  EXPECT_EQ(*r.Read(8), 0xffu);
  EXPECT_EQ(*r.Read(1), 1u);
  EXPECT_EQ(*r.Read(16), 0x1234u);
}

TEST(BitstreamTest, ReadPastEndFails) {
  BitWriter w;
  w.Write(1, 1);
  const auto bytes = w.Finish();
  BitReader r(bytes);
  EXPECT_TRUE(r.Read(8).ok());  // padding bits readable within the byte
  EXPECT_FALSE(r.Read(1).ok());
}

TEST(VarintTest, RoundTripAcrossMagnitudes) {
  std::vector<uint8_t> buf;
  std::vector<uint64_t> values = {0, 1, 127, 128, 300, 1u << 20, 0xffffffffull, ~0ull};
  for (uint64_t v : values) {
    PutVarint(buf, v);
  }
  size_t pos = 0;
  for (uint64_t v : values) {
    auto got = GetVarint(buf, &pos);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(VarintTest, TruncatedFails) {
  std::vector<uint8_t> buf = {0x80};  // continuation without terminator
  size_t pos = 0;
  EXPECT_FALSE(GetVarint(buf, &pos).ok());
}

TEST(ZigZagTest, RoundTrip) {
  for (int64_t v : std::vector<int64_t>{0, 1, -1, 100, -100, INT64_MAX, INT64_MIN}) {
    EXPECT_EQ(UnZigZag(ZigZag(v)), v);
  }
}

// --- huffman --------------------------------------------------------------------

TEST(HuffmanTest, EmptyInput) {
  const auto block = HuffmanEncode({});
  auto decoded = HuffmanDecode(block);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(HuffmanTest, SingleDistinctSymbol) {
  std::vector<uint16_t> symbols(1000, 42);
  const auto block = HuffmanEncode(symbols);
  auto decoded = HuffmanDecode(block);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, symbols);
  // 1000 one-bit codes -> ~125 bytes payload.
  EXPECT_LT(block.size(), 200u);
}

TEST(HuffmanTest, SkewedDistributionCompresses) {
  Xoshiro256 rng(5);
  std::vector<uint16_t> symbols;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t r = rng.NextBelow(100);
    symbols.push_back(r < 80 ? 7 : (r < 95 ? 13 : static_cast<uint16_t>(rng.NextBelow(30))));
  }
  const auto block = HuffmanEncode(symbols);
  auto decoded = HuffmanDecode(block);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, symbols);
  EXPECT_LT(block.size(), symbols.size());  // < 8 bits/symbol on a skewed stream
}

TEST(HuffmanTest, RandomRoundTrips) {
  Xoshiro256 rng(6);
  for (int round = 0; round < 30; ++round) {
    std::vector<uint16_t> symbols(rng.NextBelow(3000));
    for (auto& s : symbols) {
      s = static_cast<uint16_t>(rng.NextBelow(1 + rng.NextBelow(500)));
    }
    const auto block = HuffmanEncode(symbols);
    auto decoded = HuffmanDecode(block);
    ASSERT_TRUE(decoded.ok()) << round;
    EXPECT_EQ(*decoded, symbols) << round;
  }
}

TEST(HuffmanTest, CorruptBlockFailsCleanly) {
  std::vector<uint16_t> symbols(100, 9);
  symbols.push_back(10);
  auto block = HuffmanEncode(symbols);
  block.resize(block.size() / 2);  // truncate
  EXPECT_FALSE(HuffmanDecode(block).ok());
}

// --- columnar audit compression -----------------------------------------------

using testing::SyntheticAuditRecords;

TEST(CompressTest, RoundTripEmpty) {
  const auto blob = EncodeAuditBatch({});
  auto decoded = DecodeAuditBatch(blob);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(CompressTest, RoundTripSynthetic) {
  const auto records = SyntheticAuditRecords(2000, 17);
  const auto blob = EncodeAuditBatch(records);
  auto decoded = DecodeAuditBatch(blob);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, records);
}

TEST(CompressTest, AchievesPaperLikeRatio) {
  // The paper reports 5x-6.7x on real record streams; bench/fig12_audit_compress measures that
  // on actual engine output. This synthetic stream is deliberately noisier (random ops, streams
  // and hints), so require a slightly lower floor here.
  const auto records = SyntheticAuditRecords(5000, 23);
  const auto blob = EncodeAuditBatch(records);
  const size_t raw = RawAuditBatchBytes(records);
  EXPECT_GT(raw, 0u);
  const double ratio = static_cast<double>(raw) / static_cast<double>(blob.size());
  EXPECT_GE(ratio, 3.5) << "raw=" << raw << " compressed=" << blob.size();
}

TEST(CompressTest, CorruptBlobFailsCleanly) {
  const auto records = SyntheticAuditRecords(100, 3);
  auto blob = EncodeAuditBatch(records);
  blob.resize(blob.size() - 5);
  EXPECT_FALSE(DecodeAuditBatch(blob).ok());
}

// --- verifier --------------------------------------------------------------------

// The honest two-window session and its verifier spec live in tests/testing/,
// along with one tamper mutation per attack class from the paper's threat model.
using testing::HonestAuditSession;
using testing::HonestAuditSpec;

TEST(VerifierTest, AcceptsHonestSession) {
  CloudVerifier verifier(HonestAuditSpec());
  const auto report = verifier.Verify(HonestAuditSession());
  EXPECT_TRUE(report.correct) << (report.violations.empty() ? "" : report.violations[0]);
  EXPECT_EQ(report.windows_verified, 1u);
  ASSERT_EQ(report.freshness.size(), 1u);
  EXPECT_EQ(report.freshness[0].delay_ms, 30u);  // egress 80 - watermark 50
  EXPECT_EQ(report.max_delay_ms, 30u);
}

TEST(VerifierTest, DetectsDroppedResult) {
  auto records = HonestAuditSession();
  testing::TamperDropEgress(records);
  CloudVerifier verifier(HonestAuditSpec());
  const auto report = verifier.Verify(records);
  EXPECT_FALSE(report.correct);
}

TEST(VerifierTest, DetectsUnprocessedWindowData) {
  auto records = HonestAuditSession();
  testing::TamperStallWindow(records);
  CloudVerifier verifier(HonestAuditSpec());
  const auto report = verifier.Verify(records);
  EXPECT_FALSE(report.correct);
}

TEST(VerifierTest, DetectsPartialData) {
  auto records = HonestAuditSession();
  testing::TamperSubstituteInput(records);
  CloudVerifier verifier(HonestAuditSpec());
  const auto report = verifier.Verify(records);
  EXPECT_FALSE(report.correct);
}

TEST(VerifierTest, DetectsWrongOperatorOrder) {
  auto records = HonestAuditSession();
  testing::TamperWrongOperator(records);
  CloudVerifier verifier(HonestAuditSpec());
  const auto report = verifier.Verify(records);
  EXPECT_FALSE(report.correct);
}

TEST(VerifierTest, DetectsFabricatedReference) {
  auto records = HonestAuditSession();
  testing::TamperFabricatedReference(records);
  CloudVerifier verifier(HonestAuditSpec());
  const auto report = verifier.Verify(records);
  EXPECT_FALSE(report.correct);
}

TEST(VerifierTest, DetectsDoubleProduction) {
  auto records = HonestAuditSession();
  testing::TamperDoubleProduction(records);
  CloudVerifier verifier(HonestAuditSpec());
  const auto report = verifier.Verify(records);
  EXPECT_FALSE(report.correct);
}

TEST(VerifierTest, DetectsEgressOfUndeclaredData) {
  auto records = HonestAuditSession();
  testing::TamperUndeclaredEgress(records);
  CloudVerifier verifier(HonestAuditSpec());
  const auto report = verifier.Verify(records);
  EXPECT_FALSE(report.correct);
}

TEST(VerifierTest, DetectsProcessingBeforeWatermark) {
  auto records = HonestAuditSession();
  testing::TamperEarlyProcessing(records);
  CloudVerifier verifier(HonestAuditSpec());
  const auto report = verifier.Verify(records);
  EXPECT_FALSE(report.correct);
}

TEST(VerifierTest, IncompleteSessionToleratesInFlightWork) {
  auto records = HonestAuditSession();
  records.pop_back();  // egress missing, but session marked incomplete
  CloudVerifier verifier(HonestAuditSpec());
  const auto report = verifier.Verify(records, /*session_complete=*/false);
  EXPECT_TRUE(report.correct) << (report.violations.empty() ? "" : report.violations[0]);
}

TEST(VerifierTest, CountsHints) {
  auto records = HonestAuditSession();
  records[2].hints.push_back(AuditHint::After(10));
  records[3].hints.push_back(AuditHint::Parallel(1));
  CloudVerifier verifier(HonestAuditSpec());
  const auto report = verifier.Verify(records);
  EXPECT_EQ(report.hints_audited, 2u);
}

TEST(VerifierTest, MultiStreamJoinSession) {
  // Two streams, one window each side, joined after the watermark.
  std::vector<AuditRecord> r;
  r.push_back({.op = PrimitiveOp::kIngress, .ts_ms = 1, .outputs = {1}, .stream = 0});
  r.push_back({.op = PrimitiveOp::kIngress, .ts_ms = 1, .outputs = {2}, .stream = 1});
  r.push_back({.op = PrimitiveOp::kSegment, .ts_ms = 2, .inputs = {1}, .outputs = {10},
               .win_nos = {0}, .stream = 0});
  r.push_back({.op = PrimitiveOp::kSegment, .ts_ms = 2, .inputs = {2}, .outputs = {11},
               .win_nos = {0}, .stream = 1});
  r.push_back({.op = PrimitiveOp::kSort, .ts_ms = 3, .inputs = {10}, .outputs = {20},
               .stream = 0});
  r.push_back({.op = PrimitiveOp::kSort, .ts_ms = 3, .inputs = {11}, .outputs = {21},
               .stream = 1});
  r.push_back({.op = PrimitiveOp::kWatermark, .ts_ms = 10, .watermark = 1000});
  r.push_back({.op = PrimitiveOp::kMergeN, .ts_ms = 11, .inputs = {20}, .outputs = {30},
               .stream = 0});
  r.push_back({.op = PrimitiveOp::kMergeN, .ts_ms = 11, .inputs = {21}, .outputs = {31},
               .stream = 1});
  r.push_back({.op = PrimitiveOp::kJoin, .ts_ms = 12, .inputs = {30, 31}, .outputs = {40}});
  r.push_back({.op = PrimitiveOp::kEgress, .ts_ms = 13, .inputs = {40}});

  VerifierPipelineSpec spec;
  spec.window_size_ms = 1000;
  spec.per_batch_chain = {PrimitiveOp::kSort};
  spec.per_window_stages = {
      WindowStage{.op = PrimitiveOp::kMergeN, .input_stages = {-1}, .stream_filter = 0},
      WindowStage{.op = PrimitiveOp::kMergeN, .input_stages = {-1}, .stream_filter = 1},
      WindowStage{.op = PrimitiveOp::kJoin, .input_stages = {0, 1}},
  };
  CloudVerifier verifier(spec);
  const auto report = verifier.Verify(r);
  EXPECT_TRUE(report.correct) << (report.violations.empty() ? "" : report.violations[0]);
  EXPECT_EQ(report.windows_verified, 1u);
}

}  // namespace
}  // namespace sbt
