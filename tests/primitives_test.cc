// Unit + differential tests for the trusted primitives.
//
// Every GroupBy-family primitive is checked against an obvious reference computation, and the
// vectorized sort/merge kernels are differentially tested against std::sort / std::merge across
// sizes and distributions (the paper's determinism requirement: same inputs -> same bytes).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "src/common/rng.h"
#include "src/primitives/kv.h"
#include "src/primitives/primitives.h"
#include "src/primitives/vec_sort.h"
#include "src/tz/secure_world.h"
#include "src/uarray/allocator.h"
#include "tests/testing/testing.h"

namespace sbt {
namespace {

TzPartitionConfig TestConfig() { return testing::SmallTzPartition(64); }

class PrimitivesTest : public ::testing::Test {
 protected:
  PrimitivesTest() : world_(TestConfig()), alloc_(&world_) { ctx_.alloc = &alloc_; }

  UArray* MakeEvents(const std::vector<Event>& events) {
    auto arr = alloc_.Create(sizeof(Event), UArrayScope::kStreaming);
    EXPECT_TRUE(arr.ok());
    EXPECT_TRUE((*arr)->Append(events.data(), events.size() * sizeof(Event)).ok());
    (*arr)->Produce();
    return *arr;
  }

  UArray* MakeKV(const std::vector<std::pair<uint32_t, int32_t>>& kvs, bool sorted = false) {
    std::vector<PackedKV> packed;
    packed.reserve(kvs.size());
    for (const auto& [k, v] : kvs) {
      packed.push_back(PackKV(k, v));
    }
    if (sorted) {
      std::sort(packed.begin(), packed.end());
    }
    auto arr = alloc_.Create(sizeof(PackedKV), UArrayScope::kStreaming);
    EXPECT_TRUE(arr.ok());
    EXPECT_TRUE((*arr)->Append(packed.data(), packed.size() * sizeof(PackedKV)).ok());
    (*arr)->Produce();
    return *arr;
  }

  SecureWorld world_;
  UArrayAllocator alloc_;
  PrimitiveContext ctx_;
};

// --- kv packing ---------------------------------------------------------------

TEST(KvTest, PackUnpackRoundTrip) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 10000; ++i) {
    const uint32_t key = rng.Next32();
    const int32_t value = static_cast<int32_t>(rng.Next32());
    const PackedKV p = PackKV(key, value);
    EXPECT_EQ(UnpackKey(p), key);
    EXPECT_EQ(UnpackValue(p), value);
  }
}

TEST(KvTest, SignedOrderMatchesKeyThenValue) {
  Xoshiro256 rng(12);
  for (int i = 0; i < 10000; ++i) {
    const uint32_t k1 = rng.Next32() % 100;
    const uint32_t k2 = rng.Next32() % 100;
    const int32_t v1 = static_cast<int32_t>(rng.Next32());
    const int32_t v2 = static_cast<int32_t>(rng.Next32());
    const bool expect_less = (k1 != k2) ? (k1 < k2) : (v1 < v2);
    EXPECT_EQ(PackKV(k1, v1) < PackKV(k2, v2), expect_less)
        << k1 << "," << v1 << " vs " << k2 << "," << v2;
  }
}

TEST(KvTest, ExtremeValuesOrderCorrectly) {
  EXPECT_LT(PackKV(0, INT32_MIN), PackKV(0, INT32_MAX));
  EXPECT_LT(PackKV(0, INT32_MAX), PackKV(1, INT32_MIN));
  EXPECT_LT(PackKV(0xfffffffe, 5), PackKV(0xffffffff, -5));
}

// --- vectorized sort/merge -----------------------------------------------------

class VecSortTest : public ::testing::TestWithParam<SortImpl> {};

TEST_P(VecSortTest, MatchesStdSortAcrossSizes) {
  if (GetParam() == SortImpl::kVector && !VectorSortSupported()) {
    GTEST_SKIP() << "no AVX2";
  }
  Xoshiro256 rng(77);
  for (size_t n :
       {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 15u, 16u, 17u, 63u, 100u, 1000u, 4096u, 100000u}) {
    std::vector<int64_t> data(n);
    for (auto& v : data) {
      v = static_cast<int64_t>(rng.Next());
    }
    std::vector<int64_t> expected = data;
    std::sort(expected.begin(), expected.end());
    std::vector<int64_t> scratch(n);
    SortI64(data, scratch, GetParam());
    EXPECT_EQ(data, expected) << "n=" << n;
  }
}

TEST_P(VecSortTest, HandlesAdversarialDistributions) {
  if (GetParam() == SortImpl::kVector && !VectorSortSupported()) {
    GTEST_SKIP() << "no AVX2";
  }
  const size_t n = 10000;
  std::vector<std::vector<int64_t>> cases;
  // Already sorted, reverse sorted, all equal, few distinct, organ pipe.
  std::vector<int64_t> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<int64_t>(i);
  }
  cases.push_back(v);
  std::reverse(v.begin(), v.end());
  cases.push_back(v);
  cases.push_back(std::vector<int64_t>(n, 42));
  Xoshiro256 rng(3);
  for (auto& x : v) {
    x = static_cast<int64_t>(rng.NextBelow(4));
  }
  cases.push_back(v);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<int64_t>(i < n / 2 ? i : n - i);
  }
  cases.push_back(v);

  for (auto& data : cases) {
    std::vector<int64_t> expected = data;
    std::sort(expected.begin(), expected.end());
    std::vector<int64_t> scratch(data.size());
    SortI64(data, scratch, GetParam());
    EXPECT_EQ(data, expected);
  }
}

TEST_P(VecSortTest, MergeMatchesStdMerge) {
  if (GetParam() == SortImpl::kVector && !VectorSortSupported()) {
    GTEST_SKIP() << "no AVX2";
  }
  Xoshiro256 rng(99);
  for (int round = 0; round < 200; ++round) {
    const size_t na = rng.NextBelow(300);
    const size_t nb = rng.NextBelow(300);
    std::vector<int64_t> a(na);
    std::vector<int64_t> b(nb);
    for (auto& x : a) {
      x = static_cast<int64_t>(rng.NextBelow(1000));
    }
    for (auto& x : b) {
      x = static_cast<int64_t>(rng.NextBelow(1000));
    }
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    std::vector<int64_t> expected(na + nb);
    std::merge(a.begin(), a.end(), b.begin(), b.end(), expected.begin());
    std::vector<int64_t> out(na + nb);
    MergeI64(a, b, out, GetParam());
    EXPECT_EQ(out, expected) << "round=" << round << " na=" << na << " nb=" << nb;
  }
}

TEST_P(VecSortTest, MergeLargeRuns) {
  if (GetParam() == SortImpl::kVector && !VectorSortSupported()) {
    GTEST_SKIP() << "no AVX2";
  }
  Xoshiro256 rng(13);
  std::vector<int64_t> a(50000);
  std::vector<int64_t> b(70000);
  for (auto& x : a) {
    x = static_cast<int64_t>(rng.Next());
  }
  for (auto& x : b) {
    x = static_cast<int64_t>(rng.Next());
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::vector<int64_t> expected(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), expected.begin());
  std::vector<int64_t> out(a.size() + b.size());
  MergeI64(a, b, out, GetParam());
  EXPECT_EQ(out, expected);
}

INSTANTIATE_TEST_SUITE_P(AllImpls, VecSortTest,
                         ::testing::Values(SortImpl::kScalar, SortImpl::kVector),
                         [](const ::testing::TestParamInfo<SortImpl>& info) {
                           return info.param == SortImpl::kScalar ? "Scalar" : "Vector";
                         });

// --- event primitives ----------------------------------------------------------

TEST_F(PrimitivesTest, SegmentSplitsByWindow) {
  UArray* in = MakeEvents({
      {.ts_ms = 50, .key = 1, .value = 10},
      {.ts_ms = 1500, .key = 2, .value = 20},
      {.ts_ms = 999, .key = 3, .value = 30},
      {.ts_ms = 2100, .key = 4, .value = 40},
  });
  auto result = PrimSegment(ctx_, *in, SlidingWindowFn{1000, 1000});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 3u);
  EXPECT_EQ((*result)[0].window_index, 0u);
  EXPECT_EQ((*result)[0].events->size(), 2u);
  EXPECT_EQ((*result)[1].window_index, 1u);
  EXPECT_EQ((*result)[1].events->size(), 1u);
  EXPECT_EQ((*result)[2].window_index, 2u);
  // Window 0 preserves arrival order.
  auto w0 = (*result)[0].events->Span<Event>();
  EXPECT_EQ(w0[0].key, 1u);
  EXPECT_EQ(w0[1].key, 3u);
}

TEST_F(PrimitivesTest, SegmentEmptyInput) {
  UArray* in = MakeEvents({});
  auto result = PrimSegment(ctx_, *in, SlidingWindowFn{1000, 1000});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST_F(PrimitivesTest, SegmentRejectsZeroWindow) {
  UArray* in = MakeEvents({{.ts_ms = 1, .key = 1, .value = 1}});
  EXPECT_EQ(PrimSegment(ctx_, *in, SlidingWindowFn{0, 0}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(PrimitivesTest, FilterBandKeepsHalfOpenRange) {
  UArray* in = MakeEvents({
      {.ts_ms = 0, .key = 1, .value = 5},
      {.ts_ms = 0, .key = 2, .value = 10},
      {.ts_ms = 0, .key = 3, .value = 15},
      {.ts_ms = 0, .key = 4, .value = 20},
  });
  auto out = PrimFilterBand(ctx_, *in, 10, 20);
  ASSERT_TRUE(out.ok());
  auto span = (*out)->Span<Event>();
  ASSERT_EQ(span.size(), 2u);
  EXPECT_EQ(span[0].value, 10);
  EXPECT_EQ(span[1].value, 15);
}

TEST_F(PrimitivesTest, FilterBandLargeInputCrossesChunks) {
  std::vector<Event> events;
  for (int i = 0; i < 50000; ++i) {
    events.push_back({.ts_ms = 0, .key = static_cast<uint32_t>(i), .value = i % 100});
  }
  UArray* in = MakeEvents(events);
  auto out = PrimFilterBand(ctx_, *in, 0, 50);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)->size(), 25000u);
}

TEST_F(PrimitivesTest, SelectByKey) {
  UArray* in = MakeEvents({
      {.ts_ms = 0, .key = 7, .value = 1},
      {.ts_ms = 0, .key = 8, .value = 2},
      {.ts_ms = 0, .key = 7, .value = 3},
  });
  auto out = PrimSelect(ctx_, *in, 7);
  ASSERT_TRUE(out.ok());
  auto span = (*out)->Span<Event>();
  ASSERT_EQ(span.size(), 2u);
  EXPECT_EQ(span[0].value, 1);
  EXPECT_EQ(span[1].value, 3);
}

TEST_F(PrimitivesTest, ProjectPacksKeyValue) {
  UArray* in = MakeEvents({{.ts_ms = 123, .key = 5, .value = -9}});
  auto out = PrimProject(ctx_, *in);
  ASSERT_TRUE(out.ok());
  auto span = (*out)->Span<PackedKV>();
  ASSERT_EQ(span.size(), 1u);
  EXPECT_EQ(UnpackKey(span[0]), 5u);
  EXPECT_EQ(UnpackValue(span[0]), -9);
}

TEST_F(PrimitivesTest, ScaleMultipliesValues) {
  UArray* in = MakeEvents({{.ts_ms = 1, .key = 2, .value = 3}});
  auto out = PrimScale(ctx_, *in, -4);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)->Span<Event>()[0].value, -12);
  EXPECT_EQ((*out)->Span<Event>()[0].ts_ms, 1u);
}

TEST_F(PrimitivesTest, SampleEveryNth) {
  std::vector<Event> events;
  for (int i = 0; i < 10; ++i) {
    events.push_back({.ts_ms = 0, .key = 0, .value = i});
  }
  UArray* in = MakeEvents(events);
  auto out = PrimSample(ctx_, *in, 3);
  ASSERT_TRUE(out.ok());
  auto span = (*out)->Span<Event>();
  ASSERT_EQ(span.size(), 4u);
  EXPECT_EQ(span[0].value, 0);
  EXPECT_EQ(span[3].value, 9);
  EXPECT_EQ(PrimSample(ctx_, *in, 0).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PrimitivesTest, MinMaxAndEmpty) {
  UArray* in = MakeEvents({
      {.ts_ms = 0, .key = 0, .value = 7},
      {.ts_ms = 0, .key = 0, .value = -3},
      {.ts_ms = 0, .key = 0, .value = 12},
  });
  auto out = PrimMinMax(ctx_, *in);
  ASSERT_TRUE(out.ok());
  auto span = (*out)->Span<int32_t>();
  EXPECT_EQ(span[0], -3);
  EXPECT_EQ(span[1], 12);

  UArray* empty = MakeEvents({});
  auto out2 = PrimMinMax(ctx_, *empty);
  ASSERT_TRUE(out2.ok());
  EXPECT_EQ((*out2)->Span<int32_t>()[0], INT32_MAX);
  EXPECT_EQ((*out2)->Span<int32_t>()[1], INT32_MIN);
}

TEST_F(PrimitivesTest, HistogramBucketsAndClamps) {
  UArray* in = MakeEvents({
      {.ts_ms = 0, .key = 0, .value = -100},  // clamps to bucket 0
      {.ts_ms = 0, .key = 0, .value = 5},     // bucket 0
      {.ts_ms = 0, .key = 0, .value = 15},    // bucket 1
      {.ts_ms = 0, .key = 0, .value = 999},   // clamps to last bucket
  });
  auto out = PrimHistogram(ctx_, *in, 0, 10, 3);
  ASSERT_TRUE(out.ok());
  auto span = (*out)->Span<uint64_t>();
  ASSERT_EQ(span.size(), 3u);
  EXPECT_EQ(span[0], 2u);
  EXPECT_EQ(span[1], 1u);
  EXPECT_EQ(span[2], 1u);
}

TEST_F(PrimitivesTest, SumAndCount) {
  UArray* in = MakeEvents({
      {.ts_ms = 0, .key = 0, .value = 10},
      {.ts_ms = 0, .key = 0, .value = -4},
  });
  auto sum = PrimSum(ctx_, *in);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ((*sum)->Span<int64_t>()[0], 6);
  auto cnt = PrimCount(ctx_, *in);
  ASSERT_TRUE(cnt.ok());
  EXPECT_EQ((*cnt)->Span<uint64_t>()[0], 2u);
}

// --- kv primitives ---------------------------------------------------------------

TEST_F(PrimitivesTest, SortProducesAscendingKV) {
  Xoshiro256 rng(1);
  std::vector<std::pair<uint32_t, int32_t>> kvs;
  for (int i = 0; i < 5000; ++i) {
    kvs.push_back({rng.Next32() % 50, static_cast<int32_t>(rng.Next32())});
  }
  UArray* in = MakeKV(kvs);
  auto out = PrimSort(ctx_, *in);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(IsSortedI64((*out)->Span<int64_t>()));
  EXPECT_EQ((*out)->size(), kvs.size());
  // Sorting must not drop or invent records: multiset equality with reference.
  std::vector<PackedKV> expected;
  for (const auto& [k, v] : kvs) {
    expected.push_back(PackKV(k, v));
  }
  std::sort(expected.begin(), expected.end());
  auto span = (*out)->Span<PackedKV>();
  EXPECT_TRUE(std::equal(span.begin(), span.end(), expected.begin()));
}

TEST_F(PrimitivesTest, SortRetiresItsScratch) {
  UArray* in = MakeKV({{3, 1}, {1, 2}, {2, 3}});
  const size_t live_before = alloc_.stats().live_arrays;
  auto out = PrimSort(ctx_, *in);
  ASSERT_TRUE(out.ok());
  // Only the output should remain live beyond the input.
  EXPECT_EQ(alloc_.stats().live_arrays, live_before + 1);
}

TEST_F(PrimitivesTest, MergeTwoSortedArrays) {
  UArray* a = MakeKV({{1, 1}, {3, 3}, {5, 5}}, /*sorted=*/true);
  UArray* b = MakeKV({{2, 2}, {4, 4}}, /*sorted=*/true);
  auto out = PrimMerge(ctx_, *a, *b);
  ASSERT_TRUE(out.ok());
  auto span = (*out)->Span<PackedKV>();
  ASSERT_EQ(span.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(UnpackKey(span[i]), i + 1);
  }
}

TEST_F(PrimitivesTest, MergeNManyArrays) {
  Xoshiro256 rng(4);
  std::vector<const UArray*> inputs;
  std::vector<PackedKV> all;
  for (int i = 0; i < 9; ++i) {
    std::vector<std::pair<uint32_t, int32_t>> kvs;
    for (int j = 0; j < 100; ++j) {
      kvs.push_back({rng.Next32() % 1000, static_cast<int32_t>(j)});
    }
    UArray* arr = MakeKV(kvs, /*sorted=*/true);
    inputs.push_back(arr);
    auto span = arr->Span<PackedKV>();
    all.insert(all.end(), span.begin(), span.end());
  }
  auto out = PrimMergeN(ctx_, inputs);
  ASSERT_TRUE(out.ok());
  std::sort(all.begin(), all.end());
  auto span = (*out)->Span<PackedKV>();
  ASSERT_EQ(span.size(), all.size());
  EXPECT_TRUE(std::equal(span.begin(), span.end(), all.begin()));
  EXPECT_TRUE((*out)->state() == UArrayState::kProduced);
}

TEST_F(PrimitivesTest, SumCntAggregatesPerKey) {
  UArray* in = MakeKV({{1, 10}, {1, 20}, {2, 5}, {3, 1}, {3, -1}}, /*sorted=*/true);
  auto out = PrimSumCnt(ctx_, *in);
  ASSERT_TRUE(out.ok());
  auto span = (*out)->Span<KeySumCount>();
  ASSERT_EQ(span.size(), 3u);
  EXPECT_EQ(span[0], (KeySumCount{1, 2, 30}));
  EXPECT_EQ(span[1], (KeySumCount{2, 1, 5}));
  EXPECT_EQ(span[2], (KeySumCount{3, 2, 0}));
}

TEST_F(PrimitivesTest, SumCntMatchesReferenceOnRandomData) {
  Xoshiro256 rng(8);
  std::vector<std::pair<uint32_t, int32_t>> kvs;
  std::map<uint32_t, std::pair<uint32_t, int64_t>> ref;
  for (int i = 0; i < 20000; ++i) {
    const uint32_t k = rng.Next32() % 200;
    const int32_t v = static_cast<int32_t>(rng.Next32() % 1000) - 500;
    kvs.push_back({k, v});
    ref[k].first += 1;
    ref[k].second += v;
  }
  UArray* in = MakeKV(kvs, /*sorted=*/true);
  auto out = PrimSumCnt(ctx_, *in);
  ASSERT_TRUE(out.ok());
  auto span = (*out)->Span<KeySumCount>();
  ASSERT_EQ(span.size(), ref.size());
  size_t i = 0;
  for (const auto& [k, sc] : ref) {
    EXPECT_EQ(span[i].key, k);
    EXPECT_EQ(span[i].count, sc.first);
    EXPECT_EQ(span[i].sum, sc.second);
    ++i;
  }
}

TEST_F(PrimitivesTest, MergeSumCntAddsMatchingKeys) {
  UArray* a = MakeKV({}, true);  // build KeySumCount arrays manually
  (void)a;
  auto mk = [&](std::vector<KeySumCount> cells) {
    auto arr = alloc_.Create(sizeof(KeySumCount), UArrayScope::kStreaming);
    EXPECT_TRUE(arr.ok());
    EXPECT_TRUE((*arr)->Append(cells.data(), cells.size() * sizeof(KeySumCount)).ok());
    (*arr)->Produce();
    return *arr;
  };
  UArray* x = mk({{1, 2, 10}, {3, 1, 5}});
  UArray* y = mk({{1, 1, 7}, {2, 4, 8}});
  auto out = PrimMergeSumCnt(ctx_, *x, *y);
  ASSERT_TRUE(out.ok());
  auto span = (*out)->Span<KeySumCount>();
  ASSERT_EQ(span.size(), 3u);
  EXPECT_EQ(span[0], (KeySumCount{1, 3, 17}));
  EXPECT_EQ(span[1], (KeySumCount{2, 4, 8}));
  EXPECT_EQ(span[2], (KeySumCount{3, 1, 5}));
}

TEST_F(PrimitivesTest, TopKTakesLargestPerKey) {
  UArray* in = MakeKV({{1, 5}, {1, 9}, {1, 2}, {2, 4}}, /*sorted=*/true);
  auto out = PrimTopKPerKey(ctx_, *in, 2);
  ASSERT_TRUE(out.ok());
  auto span = (*out)->Span<PackedKV>();
  ASSERT_EQ(span.size(), 3u);  // key 1 contributes 2 (5, 9); key 2 contributes 1 (4)
  EXPECT_EQ(UnpackValue(span[0]), 5);
  EXPECT_EQ(UnpackValue(span[1]), 9);
  EXPECT_EQ(UnpackValue(span[2]), 4);
  EXPECT_EQ(PrimTopKPerKey(ctx_, *in, 0).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PrimitivesTest, UniqueAndCountPerKey) {
  UArray* in = MakeKV({{1, 1}, {1, 2}, {4, 1}, {9, 0}, {9, 9}, {9, 10}}, /*sorted=*/true);
  auto uniq = PrimUnique(ctx_, *in);
  ASSERT_TRUE(uniq.ok());
  auto uspan = (*uniq)->Span<uint32_t>();
  ASSERT_EQ(uspan.size(), 3u);
  EXPECT_EQ(uspan[0], 1u);
  EXPECT_EQ(uspan[1], 4u);
  EXPECT_EQ(uspan[2], 9u);

  auto counts = PrimCountPerKey(ctx_, *in);
  ASSERT_TRUE(counts.ok());
  auto cspan = (*counts)->Span<KeyValue>();
  ASSERT_EQ(cspan.size(), 3u);
  EXPECT_EQ(cspan[0], (KeyValue{1, 2}));
  EXPECT_EQ(cspan[2], (KeyValue{9, 3}));
}

TEST_F(PrimitivesTest, MedianPerKeyLowerMedian) {
  UArray* in = MakeKV({{1, 10}, {1, 20}, {1, 30}, {2, 4}, {2, 8}}, /*sorted=*/true);
  auto out = PrimMedianPerKey(ctx_, *in);
  ASSERT_TRUE(out.ok());
  auto span = (*out)->Span<KeyValue>();
  ASSERT_EQ(span.size(), 2u);
  EXPECT_EQ(span[0], (KeyValue{1, 20}));
  EXPECT_EQ(span[1], (KeyValue{2, 4}));  // lower median of {4, 8}
}

TEST_F(PrimitivesTest, DedupDropsConsecutiveDuplicates) {
  UArray* in = MakeKV({{1, 1}, {1, 1}, {1, 2}, {2, 2}, {2, 2}}, /*sorted=*/true);
  auto out = PrimDedup(ctx_, *in);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)->size(), 3u);
}

TEST_F(PrimitivesTest, JoinEmitsCrossProductPerKey) {
  UArray* l = MakeKV({{1, 10}, {2, 20}, {2, 21}, {4, 40}}, /*sorted=*/true);
  UArray* r = MakeKV({{2, 200}, {2, 201}, {3, 300}, {4, 400}}, /*sorted=*/true);
  auto out = PrimJoin(ctx_, *l, *r);
  ASSERT_TRUE(out.ok());
  auto span = (*out)->Span<JoinRow>();
  // key 2: 2x2 = 4 rows; key 4: 1 row.
  ASSERT_EQ(span.size(), 5u);
  EXPECT_EQ(span[0], (JoinRow{2, 20, 200}));
  EXPECT_EQ(span[1], (JoinRow{2, 20, 201}));
  EXPECT_EQ(span[2], (JoinRow{2, 21, 200}));
  EXPECT_EQ(span[3], (JoinRow{2, 21, 201}));
  EXPECT_EQ(span[4], (JoinRow{4, 40, 400}));
}

TEST_F(PrimitivesTest, JoinDisjointKeysIsEmpty) {
  UArray* l = MakeKV({{1, 1}}, true);
  UArray* r = MakeKV({{2, 2}}, true);
  auto out = PrimJoin(ctx_, *l, *r);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE((*out)->empty());
}

TEST_F(PrimitivesTest, AverageDividesSumByCount) {
  auto arr = alloc_.Create(sizeof(KeySumCount), UArrayScope::kStreaming);
  ASSERT_TRUE(arr.ok());
  std::vector<KeySumCount> cells = {{1, 4, 100}, {2, 3, 10}};
  ASSERT_TRUE((*arr)->Append(cells.data(), cells.size() * sizeof(KeySumCount)).ok());
  (*arr)->Produce();
  auto out = PrimAverage(ctx_, **arr);
  ASSERT_TRUE(out.ok());
  auto span = (*out)->Span<KeyValue>();
  EXPECT_EQ(span[0], (KeyValue{1, 25}));
  EXPECT_EQ(span[1], (KeyValue{2, 3}));
}

TEST_F(PrimitivesTest, EwmaBlendsStateAndObservation) {
  auto mk = [&](std::vector<KeyValue> cells) {
    auto arr = alloc_.Create(sizeof(KeyValue), UArrayScope::kState);
    EXPECT_TRUE(arr.ok());
    EXPECT_TRUE((*arr)->Append(cells.data(), cells.size() * sizeof(KeyValue)).ok());
    (*arr)->Produce();
    return *arr;
  };
  UArray* state = mk({{1, 100}, {3, 50}});
  UArray* obs = mk({{1, 200}, {2, 80}});
  // alpha = 1/2: key1 -> 150; key2 seeds at 80; key3 carries 50.
  auto out = PrimEwma(ctx_, *state, *obs, 1, 2);
  ASSERT_TRUE(out.ok());
  auto span = (*out)->Span<KeyValue>();
  ASSERT_EQ(span.size(), 3u);
  EXPECT_EQ(span[0], (KeyValue{1, 150}));
  EXPECT_EQ(span[1], (KeyValue{2, 80}));
  EXPECT_EQ(span[2], (KeyValue{3, 50}));
  EXPECT_EQ(PrimEwma(ctx_, *state, *obs, 3, 2).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PrimitivesTest, ConcatPreservesOrder) {
  UArray* a = MakeKV({{1, 1}}, true);
  UArray* b = MakeKV({{9, 9}}, true);
  auto out = PrimConcat(ctx_, {a, b});
  ASSERT_TRUE(out.ok());
  auto span = (*out)->Span<PackedKV>();
  ASSERT_EQ(span.size(), 2u);
  EXPECT_EQ(UnpackKey(span[0]), 1u);
  EXPECT_EQ(UnpackKey(span[1]), 9u);
  EXPECT_EQ(PrimConcat(ctx_, {}).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PrimitivesTest, ConcatRejectsMixedElementSizes) {
  UArray* a = MakeKV({{1, 1}}, true);
  UArray* e = MakeEvents({{.ts_ms = 0, .key = 1, .value = 1}});
  EXPECT_EQ(PrimConcat(ctx_, {a, e}).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PrimitivesTest, CompactCopiesBytes) {
  UArray* a = MakeKV({{1, 2}, {3, 4}}, true);
  auto out = PrimCompact(ctx_, *a);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)->size(), 2u);
  EXPECT_NE((*out)->data(), a->data());
  EXPECT_EQ(0, memcmp((*out)->data(), a->data(), a->size_bytes()));
}

TEST_F(PrimitivesTest, PrimitivesRejectOpenInputs) {
  auto open = alloc_.Create(sizeof(PackedKV), UArrayScope::kStreaming);
  ASSERT_TRUE(open.ok());
  EXPECT_EQ(PrimSort(ctx_, **open).status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(PrimCount(ctx_, **open).status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(PrimitivesTest, PrimitivesRejectWrongElementSize) {
  UArray* events = MakeEvents({{.ts_ms = 0, .key = 1, .value = 1}});
  EXPECT_EQ(PrimSort(ctx_, *events).status().code(), StatusCode::kInvalidArgument);
  UArray* kv = MakeKV({{1, 1}});
  EXPECT_EQ(PrimFilterBand(ctx_, *kv, 0, 1).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PrimitivesTest, DeterministicOutputs) {
  // Same inputs -> byte-identical outputs (required by audit replay).
  Xoshiro256 rng(21);
  std::vector<std::pair<uint32_t, int32_t>> kvs;
  for (int i = 0; i < 3000; ++i) {
    kvs.push_back({rng.Next32() % 64, static_cast<int32_t>(rng.Next32())});
  }
  UArray* in1 = MakeKV(kvs);
  UArray* in2 = MakeKV(kvs);
  auto s1 = PrimSort(ctx_, *in1);
  auto s2 = PrimSort(ctx_, *in2);
  ASSERT_TRUE(s1.ok() && s2.ok());
  ASSERT_EQ((*s1)->size_bytes(), (*s2)->size_bytes());
  EXPECT_EQ(0, memcmp((*s1)->data(), (*s2)->data(), (*s1)->size_bytes()));

  auto a1 = PrimSumCnt(ctx_, **s1);
  auto a2 = PrimSumCnt(ctx_, **s2);
  ASSERT_TRUE(a1.ok() && a2.ok());
  ASSERT_EQ((*a1)->size_bytes(), (*a2)->size_bytes());
  EXPECT_EQ(0, memcmp((*a1)->data(), (*a2)->data(), (*a1)->size_bytes()));
}

// Regression: an undersized audit-id reservation must fail the chain, not silently fall back
// to the shared counter. The old fallback kept the run alive but made audit ids depend on the
// execution schedule, breaking the worker-count byte-equivalence invariant (DESIGN.md §7).
TEST_F(PrimitivesTest, ExhaustedIdReservationFailsInsteadOfFallingBack) {
  obs::Counter* exhausted =
      obs::MetricsRegistry::Global().GetCounter("sbt_audit_reservation_exhausted_total");
  const uint64_t exhausted_before = exhausted->Value();

  // One reserved id for a chain that produces two audit-visible outputs.
  IdReservation ids{.next = 1000, .end = 1001};
  ctx_.ids = &ids;
  UArray* events = MakeEvents({{.ts_ms = 0, .key = 1, .value = 5},
                               {.ts_ms = 1, .key = 2, .value = 6}});

  auto first = PrimFilterBand(ctx_, *events, INT32_MIN, INT32_MAX);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ((*first)->id(), 1000u);  // the reserved id, independent of the shared counter

  auto second = PrimFilterBand(ctx_, *events, INT32_MIN, INT32_MAX);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kInternal);
  EXPECT_EQ(exhausted->Value(), exhausted_before + 1);

  // Temporaries never touch the reservation, so scratch allocations still succeed after the
  // failure (the chain's cleanup path can run).
  EXPECT_TRUE(ctx_.NewTemp(sizeof(Event)).ok());
  ctx_.ids = nullptr;
}

}  // namespace
}  // namespace sbt
