// Tests for the TrustZone emulation: secure pool accounting, on-demand paging, in-place growth,
// head reclaim, exhaustion (backpressure precondition), boundary checks, world-switch gate.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <thread>
#include <vector>

#include "src/tz/secure_world.h"
#include "src/tz/tzasc.h"
#include "src/tz/world_switch.h"
#include "tests/testing/testing.h"

namespace sbt {
namespace {

TzPartitionConfig SmallConfig() {
  return testing::SmallTzPartition(1);  // 1 MB pool
}

TEST(TzascTest, ValidatesConfig) {
  TzPartitionConfig cfg = SmallConfig();
  EXPECT_TRUE(cfg.Valid());
  cfg.secure_page_bytes = 3000;  // not a power of two
  EXPECT_FALSE(cfg.Valid());
  cfg = SmallConfig();
  cfg.secure_dram_bytes = 0;
  EXPECT_FALSE(cfg.Valid());
}

TEST(SecureWorldTest, PoolFrameAccounting) {
  SecureWorld world(SmallConfig());
  EXPECT_EQ(world.pool_frames(), 16u);
  EXPECT_EQ(world.free_frames(), 16u);
  EXPECT_EQ(world.stats().pool_bytes, 1u << 20);
  EXPECT_EQ(world.stats().committed_bytes, 0u);
}

TEST(SecureWorldTest, ReserveCommitsNothing) {
  SecureWorld world(SmallConfig());
  auto range = world.Reserve(512u << 10);
  ASSERT_TRUE(range.ok());
  EXPECT_TRUE(range->valid());
  EXPECT_EQ(world.stats().committed_bytes, 0u);
  EXPECT_GE(range->capacity(), 512u << 10);
}

TEST(SecureWorldTest, EnsureBackedCommitsAndIsWritable) {
  SecureWorld world(SmallConfig());
  auto range = world.Reserve(512u << 10);
  ASSERT_TRUE(range.ok());
  ASSERT_TRUE(range->EnsureBacked(100).ok());
  EXPECT_EQ(range->committed_end(), 64u << 10);  // rounded to page granule
  EXPECT_EQ(world.stats().committed_bytes, 64u << 10);

  // The committed region must be readable and writable.
  std::memset(range->base(), 0xcd, 100);
  EXPECT_EQ(range->base()[99], 0xcd);
}

TEST(SecureWorldTest, GrowthIsInPlace) {
  SecureWorld world(SmallConfig());
  auto range = world.Reserve(1u << 20);
  ASSERT_TRUE(range.ok());
  uint8_t* base = range->base();
  ASSERT_TRUE(range->EnsureBacked(1).ok());
  base[0] = 42;
  for (size_t grow = 2; grow <= 8; ++grow) {
    ASSERT_TRUE(range->EnsureBacked(grow * (64u << 10)).ok());
    EXPECT_EQ(range->base(), base) << "growth must never relocate";
    EXPECT_EQ(base[0], 42) << "existing data must survive growth";
  }
}

TEST(SecureWorldTest, ExhaustionReturnsResourceExhausted) {
  SecureWorld world(SmallConfig());  // 16 frames
  auto range = world.Reserve(4u << 20);
  ASSERT_TRUE(range.ok());
  // 4MB reservation but only 1MB physical: committing past the pool must fail cleanly.
  const Status s = range->EnsureBacked(2u << 20);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  // Everything that was committed remains usable.
  EXPECT_EQ(range->committed_end(), 1u << 20);
  range->base()[(1u << 20) - 1] = 7;
}

TEST(SecureWorldTest, ReleaseHeadReturnsFramesToPool) {
  SecureWorld world(SmallConfig());
  auto range = world.Reserve(1u << 20);
  ASSERT_TRUE(range.ok());
  ASSERT_TRUE(range->EnsureBacked(1u << 20).ok());
  EXPECT_EQ(world.free_frames(), 0u);

  range->ReleaseHead(512u << 10);
  EXPECT_EQ(world.free_frames(), 8u);
  EXPECT_EQ(range->committed_begin(), 512u << 10);
  // The tail is still writable.
  range->base()[(1u << 20) - 1] = 9;
  EXPECT_EQ(world.stats().committed_bytes, 512u << 10);
}

TEST(SecureWorldTest, ReleaseHeadPartialPageIsDeferred) {
  SecureWorld world(SmallConfig());
  auto range = world.Reserve(1u << 20);
  ASSERT_TRUE(range.ok());
  ASSERT_TRUE(range->EnsureBacked(2 * (64u << 10)).ok());
  // Releasing less than a full page reclaims nothing yet.
  range->ReleaseHead(100);
  EXPECT_EQ(range->committed_begin(), 0u);
  range->ReleaseHead(64u << 10);
  EXPECT_EQ(range->committed_begin(), 64u << 10);
}

TEST(SecureWorldTest, FreedFramesAreReusable) {
  SecureWorld world(SmallConfig());
  auto r1 = world.Reserve(1u << 20);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r1->EnsureBacked(1u << 20).ok());
  r1->ReleaseAll();
  EXPECT_EQ(world.free_frames(), 16u);

  auto r2 = world.Reserve(1u << 20);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->EnsureBacked(1u << 20).ok());
  std::memset(r2->base(), 0, 1u << 20);
}

TEST(SecureWorldTest, DestructorReleasesFrames) {
  SecureWorld world(SmallConfig());
  {
    auto range = world.Reserve(512u << 10);
    ASSERT_TRUE(range.ok());
    ASSERT_TRUE(range->EnsureBacked(512u << 10).ok());
    EXPECT_EQ(world.free_frames(), 8u);
  }
  EXPECT_EQ(world.free_frames(), 16u);
  EXPECT_EQ(world.stats().committed_bytes, 0u);
}

TEST(SecureWorldTest, MoveTransfersOwnership) {
  SecureWorld world(SmallConfig());
  auto r1 = world.Reserve(512u << 10);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r1->EnsureBacked(64u << 10).ok());
  uint8_t* base = r1->base();
  base[0] = 5;

  VirtualRange r2 = std::move(*r1);
  EXPECT_EQ(r2.base(), base);
  EXPECT_EQ(r2.base()[0], 5);
  EXPECT_FALSE(r1->valid());
  r2.ReleaseAll();
  EXPECT_EQ(world.free_frames(), 16u);
}

TEST(SecureWorldTest, IsSecureAddressTracksRanges) {
  SecureWorld world(SmallConfig());
  auto range = world.Reserve(512u << 10);
  ASSERT_TRUE(range.ok());
  EXPECT_TRUE(world.IsSecureAddress(range->base()));
  EXPECT_TRUE(world.IsSecureAddress(range->base() + 1000));
  int normal_world_var = 0;
  EXPECT_FALSE(world.IsSecureAddress(&normal_world_var));
}

TEST(SecureWorldTest, PeakCommittedTracksHighWater) {
  SecureWorld world(SmallConfig());
  auto range = world.Reserve(1u << 20);
  ASSERT_TRUE(range.ok());
  ASSERT_TRUE(range->EnsureBacked(512u << 10).ok());
  range->ReleaseHead(512u << 10);
  EXPECT_EQ(world.stats().committed_bytes, 0u);
  EXPECT_EQ(world.stats().peak_committed, 512u << 10);
}

TEST(SecureWorldTest, PoolUtilization) {
  SecureWorld world(SmallConfig());
  auto range = world.Reserve(1u << 20);
  ASSERT_TRUE(range.ok());
  EXPECT_DOUBLE_EQ(world.PoolUtilization(), 0.0);
  ASSERT_TRUE(range->EnsureBacked(512u << 10).ok());
  EXPECT_DOUBLE_EQ(world.PoolUtilization(), 0.5);
}

TEST(SecureWorldTest, ConcurrentRangesShareThePool) {
  SecureWorld world(SmallConfig());
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<int> successes{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&world, &successes] {
      auto range = world.Reserve(256u << 10);
      if (!range.ok()) {
        return;
      }
      if (range->EnsureBacked(256u << 10).ok()) {
        std::memset(range->base(), 1, 256u << 10);
        successes.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  // 4 * 256KB = 1MB fits exactly.
  EXPECT_EQ(successes.load(), kThreads);
  EXPECT_EQ(world.free_frames(), 16u);
}

// --- deterministic fault injection (tests/testing ScopedFailPoint fixture) ---------------

TEST(FailPointTest, AllocFrameFailureIsDeterministicAndLeakFree) {
  SecureWorld world(SmallConfig());  // 16 frames
  auto range = world.Reserve(1u << 20);
  ASSERT_TRUE(range.ok());
  {
    // Let 4 frame allocations pass, fail the 5th: exhaustion on purpose, not by luck.
    testing::ScopedFailPoint fp("secure_world.alloc_frame",
                                testing::ScopedFailPoint::Counted(/*skip=*/4));
    const Status s = range->EnsureBacked(8 * (64u << 10));
    EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
    // Exactly the pre-failure pages are committed, and the failed allocation leaked nothing.
    EXPECT_EQ(range->committed_end(), 4 * (64u << 10));
    EXPECT_EQ(world.free_frames(), 12u);
    EXPECT_EQ(fp.hits(), 5u);
  }
  // Disarmed: growth resumes exactly where it stopped, with all data intact.
  range->base()[0] = 42;
  ASSERT_TRUE(range->EnsureBacked(8 * (64u << 10)).ok());
  EXPECT_EQ(range->committed_end(), 8 * (64u << 10));
  EXPECT_EQ(range->base()[0], 42);
  EXPECT_EQ(world.free_frames(), 8u);
}

TEST(FailPointTest, SeededAllocFaultsReplayIdentically) {
  // The same seed must fail the same allocation attempts — that is what makes randomized
  // robustness runs reproducible.
  auto run = [](uint64_t seed) {
    SecureWorld world(SmallConfig());
    auto range = world.Reserve(1u << 20);
    EXPECT_TRUE(range.ok());
    testing::ScopedFailPoint fp("secure_world.alloc_frame",
                                testing::ScopedFailPoint::Seeded(seed, /*num=*/1, /*den=*/3));
    std::vector<bool> failed;
    for (size_t page = 1; page <= 16; ++page) {
      failed.push_back(!range->EnsureBacked(page * (64u << 10)).ok());
    }
    return failed;
  };
  const auto a = run(12345);
  const auto b = run(12345);
  const auto c = run(54321);
  EXPECT_EQ(a, b) << "same seed, same failure schedule";
  EXPECT_NE(a, c) << "different seed, different schedule (with overwhelming probability)";
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0) << "p=1/3 over 16 draws must fire";
}

TEST(FailPointTest, WorldSwitchFaultsAreRetriedAndCounted) {
  WorldSwitchGate gate(WorldSwitchConfig{.entry_cycles = 2000, .exit_cycles = 1000});
  testing::ScopedFailPoint fp("world_switch.fault",
                              testing::ScopedFailPoint::Counted(/*skip=*/1, /*fail=*/2));
  for (int i = 0; i < 4; ++i) {
    auto s = gate.Enter();
  }
  // The second entry faulted twice before succeeding; every entry still completed.
  EXPECT_EQ(gate.stats().entries, 4u);
  EXPECT_EQ(gate.stats().faults, 2u);
  // Each fault burns one extra entry cost on top of the normal entry+exit.
  EXPECT_EQ(gate.stats().burned_cycles, 4u * 3000u + 2u * 2000u);
}

TEST(WorldSwitchTest, CountsEntries) {
  WorldSwitchGate gate(WorldSwitchConfig::Disabled());
  {
    auto s1 = gate.Enter();
    auto s2 = gate.Enter();
  }
  EXPECT_EQ(gate.stats().entries, 2u);
  EXPECT_EQ(gate.stats().burned_cycles, 0u);
}

TEST(WorldSwitchTest, BurnsConfiguredCycles) {
  WorldSwitchGate gate(WorldSwitchConfig{.entry_cycles = 2000, .exit_cycles = 1000});
  { auto s = gate.Enter(); }
  EXPECT_EQ(gate.stats().entries, 1u);
  EXPECT_EQ(gate.stats().burned_cycles, 3000u);
}

TEST(WorldSwitchTest, SessionIsMoveAssignable) {
  WorldSwitchGate a(WorldSwitchConfig{.entry_cycles = 2000, .exit_cycles = 1000});
  WorldSwitchGate b(WorldSwitchConfig{.entry_cycles = 400, .exit_cycles = 200});
  {
    auto s = a.Enter();
    // Re-pointing the session at a fresh entry pays the old session's exit first.
    s = b.Enter();
    EXPECT_EQ(a.stats().burned_cycles, 3000u);
    EXPECT_EQ(b.stats().entries, 1u);
    // Re-entering the same gate through the same variable is the common "reuse the session
    // variable" shape.
    s = b.Enter();
    EXPECT_EQ(b.stats().entries, 2u);
  }
  EXPECT_EQ(a.stats().entries, 1u);
  EXPECT_EQ(a.stats().burned_cycles, 3000u);
  EXPECT_EQ(b.stats().entries, 2u);
  EXPECT_EQ(b.stats().burned_cycles, 2u * 400u + 2u * 200u);
}

TEST(WorldSwitchTest, AnnotateAmortizesOpsOverEntries) {
  WorldSwitchGate gate(WorldSwitchConfig::Disabled());
  {
    // A fused chain: four ops under one entry.
    auto s = gate.Enter();
    for (uint16_t op = 10; op < 14; ++op) {
      s.Annotate(op);
    }
  }
  {
    // A call-per-primitive entry: one op.
    auto s = gate.Enter();
    s.Annotate(10);
  }
  const WorldSwitchStats stats = gate.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.annotated_ops, 5u);
  EXPECT_DOUBLE_EQ(stats.ops_per_entry(), 2.5);
  // Per-op cycle attribution accumulates (monotonic counter; exact values are host timing).
  EXPECT_GT(gate.op_cycles(10), 0u);
}

// Busy-waits long enough for ~`cycles` counter ticks — measurable in-session residency.
void SpinCycles(uint64_t cycles) {
  const uint64_t start = ReadCycleCounter();
  while (ReadCycleCounter() - start < cycles) {
  }
}

TEST(WorldSwitchTest, MoveAssignSettlesTheAssignedOverSessionsResidual) {
  // Regression: move-assigning a fresh entry over a live session pays the old session's exit,
  // but its residual in-TEE tail — the cycles since its last annotation — used to vanish when
  // mark_ was overwritten mid-flight. session_cycles then under-counted every session ended by
  // re-pointing, exactly the shape the combiner's reused session variable produces.
  WorldSwitchGate gate(WorldSwitchConfig::Disabled());
  uint64_t after_first = 0;
  {
    auto s = gate.Enter();
    SpinCycles(50000);
    EXPECT_EQ(gate.stats().session_cycles, 0u);  // nothing settled while the session is live
    s = gate.Enter();  // first session ends HERE: its 50k+ cycle tail must be settled
    after_first = gate.stats().session_cycles;
    EXPECT_GE(after_first, 50000u);
    SpinCycles(50000);
  }
  // The second session's tail settles at destruction, on top of the first one's.
  EXPECT_GE(gate.stats().session_cycles, after_first + 50000u);
}

TEST(WorldSwitchTest, OpsPerEntryIsZeroWithoutEntries) {
  // entries == 0 must read as 0 ops/entry, not a division by zero (a fresh or reset gate is
  // exactly what the fig9 emitter reads before any work ran).
  WorldSwitchStats empty;
  EXPECT_EQ(empty.ops_per_entry(), 0.0);
  WorldSwitchGate gate(WorldSwitchConfig::Disabled());
  EXPECT_EQ(gate.stats().ops_per_entry(), 0.0);
}

TEST(WorldSwitchTest, CombinedBatchStatsCountOnlyMultiChainEntries) {
  WorldSwitchGate gate(WorldSwitchConfig::Disabled());
  gate.NoteCombinedBatch(1);  // degenerate single-chain batch: not a combined entry
  EXPECT_EQ(gate.stats().combined_entries, 0u);
  EXPECT_EQ(gate.stats().combined_chains, 0u);
  gate.NoteCombinedBatch(3);
  gate.NoteCombinedBatch(2);
  EXPECT_EQ(gate.stats().combined_entries, 2u);
  EXPECT_EQ(gate.stats().combined_chains, 5u);
  gate.ResetStats();
  EXPECT_EQ(gate.stats().combined_entries, 0u);
  EXPECT_EQ(gate.stats().combined_chains, 0u);
}

TEST(WorldSwitchTest, AnnotateOnMovedFromSessionIsANoOp) {
  WorldSwitchGate gate(WorldSwitchConfig::Disabled());
  auto s1 = gate.Enter();
  auto s2 = std::move(s1);
  s1.Annotate(10);  // moved-from: must not crash or count
  s2.Annotate(10);
  EXPECT_EQ(gate.stats().annotated_ops, 1u);
}

TEST(WorldSwitchTest, ResetClearsStats) {
  WorldSwitchGate gate(WorldSwitchConfig::Disabled());
  { auto s = gate.Enter(); }
  gate.ResetStats();
  EXPECT_EQ(gate.stats().entries, 0u);
  EXPECT_EQ(gate.stats().annotated_ops, 0u);
  EXPECT_EQ(gate.op_cycles(10), 0u);
}

TEST(WorldSwitchTest, BurnTakesMeasurableTime) {
  WorldSwitchGate cheap(WorldSwitchConfig::Disabled());
  WorldSwitchGate costly(WorldSwitchConfig{.entry_cycles = 200000, .exit_cycles = 200000});

  const uint64_t t0 = ReadCycleCounter();
  for (int i = 0; i < 10; ++i) {
    auto s = cheap.Enter();
  }
  const uint64_t cheap_cycles = ReadCycleCounter() - t0;

  const uint64_t t1 = ReadCycleCounter();
  for (int i = 0; i < 10; ++i) {
    auto s = costly.Enter();
  }
  const uint64_t costly_cycles = ReadCycleCounter() - t1;
  EXPECT_GT(costly_cycles, cheap_cycles);
  EXPECT_GE(costly_cycles, 10u * 400000u);
}

}  // namespace
}  // namespace sbt
