// Crypto tests against published vectors: FIPS-197 AES, NIST SP 800-38A CTR, FIPS 180-4 SHA-256,
// RFC 4231 HMAC-SHA256. Plus round-trip properties used by the ingress/egress paths.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/crypto/aes128.h"
#include "src/crypto/sha256.h"

namespace sbt {
namespace {

std::vector<uint8_t> FromHex(const std::string& hex) {
  std::vector<uint8_t> out;
  for (size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(static_cast<uint8_t>(std::stoi(hex.substr(i, 2), nullptr, 16)));
  }
  return out;
}

TEST(Aes128Test, Fips197AppendixB) {
  // FIPS-197 Appendix B: key 2b7e..., plaintext 3243..., ciphertext 3925841d02dc09fbdc118597196a0b32.
  AesKey key{};
  const auto key_bytes = FromHex("2b7e151628aed2a6abf7158809cf4f3c");
  std::memcpy(key.data(), key_bytes.data(), 16);
  Aes128 aes(key);

  auto block_vec = FromHex("3243f6a8885a308d313198a2e0370734");
  uint8_t block[16];
  std::memcpy(block, block_vec.data(), 16);
  aes.EncryptBlock(block);

  const auto expected = FromHex("3925841d02dc09fbdc118597196a0b32");
  EXPECT_EQ(0, std::memcmp(block, expected.data(), 16));
}

TEST(Aes128Test, Fips197AppendixC1) {
  // FIPS-197 Appendix C.1: key 000102...0f, plaintext 00112233445566778899aabbccddeeff.
  AesKey key{};
  const auto key_bytes = FromHex("000102030405060708090a0b0c0d0e0f");
  std::memcpy(key.data(), key_bytes.data(), 16);
  Aes128 aes(key);

  auto pt = FromHex("00112233445566778899aabbccddeeff");
  uint8_t block[16];
  std::memcpy(block, pt.data(), 16);
  aes.EncryptBlock(block);

  const auto expected = FromHex("69c4e0d86a7b0430d8cdb78070b4c55a");
  EXPECT_EQ(0, std::memcmp(block, expected.data(), 16));
}

TEST(Aes128CtrTest, Sp80038aF51FirstBlock) {
  // NIST SP 800-38A F.5.1 CTR-AES128.Encrypt, block #1.
  // Key 2b7e151628aed2a6abf7158809cf4f3c, counter block f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff.
  AesKey key{};
  const auto key_bytes = FromHex("2b7e151628aed2a6abf7158809cf4f3c");
  std::memcpy(key.data(), key_bytes.data(), 16);

  // Our CTR layout is nonce(12) || counter(4). The SP 800-38A vector's initial counter block
  // f0..fb | fcfdfeff maps to nonce=f0..fb and counter start 0xfcfdfeff.
  const auto nonce = FromHex("f0f1f2f3f4f5f6f7f8f9fafb");
  Aes128Ctr ctr(key, nonce);

  auto pt = FromHex("6bc1bee22e409f96e93d7e117393172a");
  std::vector<uint8_t> buf = pt;
  // Stream offset = counter_start * 16.
  const uint64_t offset = 0xfcfdfeffULL * 16;
  ctr.Crypt(std::span<uint8_t>(buf.data(), buf.size()), offset);

  const auto expected = FromHex("874d6191b620e3261bef6864990db6ce");
  EXPECT_EQ(buf, expected);
}

TEST(Aes128CtrTest, RoundTripIdentity) {
  AesKey key{};
  for (size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<uint8_t>(i * 7 + 3);
  }
  std::vector<uint8_t> nonce(12, 0xab);
  Aes128Ctr ctr(key, nonce);

  Xoshiro256 rng(42);
  for (size_t len : {0u, 1u, 15u, 16u, 17u, 1000u, 4096u}) {
    std::vector<uint8_t> plain(len);
    for (auto& b : plain) {
      b = static_cast<uint8_t>(rng.Next());
    }
    std::vector<uint8_t> buf = plain;
    ctr.Crypt(std::span<uint8_t>(buf.data(), buf.size()));
    if (len > 16) {
      EXPECT_NE(buf, plain) << "ciphertext must differ for len=" << len;
    }
    ctr.Crypt(std::span<uint8_t>(buf.data(), buf.size()));
    EXPECT_EQ(buf, plain) << "CTR must be an involution for len=" << len;
  }
}

TEST(Aes128CtrTest, OffsetCryptMatchesWholeStream) {
  // Decrypting [off, off+n) with the offset API must equal decrypting the whole stream.
  AesKey key{};
  key[0] = 1;
  std::vector<uint8_t> nonce(12, 0x55);
  Aes128Ctr ctr(key, nonce);

  std::vector<uint8_t> whole(257);
  for (size_t i = 0; i < whole.size(); ++i) {
    whole[i] = static_cast<uint8_t>(i);
  }
  std::vector<uint8_t> expected = whole;
  ctr.Crypt(std::span<uint8_t>(expected.data(), expected.size()));

  for (size_t off : {0u, 1u, 15u, 16u, 31u, 100u}) {
    std::vector<uint8_t> part(whole.begin() + off, whole.end());
    ctr.Crypt(std::span<uint8_t>(part.data(), part.size()), off);
    EXPECT_TRUE(std::equal(part.begin(), part.end(), expected.begin() + off)) << off;
  }
}

TEST(Aes128CtrTest, OutOfPlaceMatchesInPlace) {
  AesKey key{};
  key[5] = 9;
  std::vector<uint8_t> nonce(12, 1);
  Aes128Ctr ctr(key, nonce);
  std::vector<uint8_t> in(100, 0x42);
  std::vector<uint8_t> out(100);
  ctr.Crypt(std::span<const uint8_t>(in.data(), in.size()),
            std::span<uint8_t>(out.data(), out.size()));
  std::vector<uint8_t> in2 = in;
  ctr.Crypt(std::span<uint8_t>(in2.data(), in2.size()));
  EXPECT_EQ(out, in2);
}

TEST(Sha256Test, EmptyString) {
  const auto digest = Sha256::Hash({});
  EXPECT_EQ(DigestToHex(digest),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  const std::string msg = "abc";
  const auto digest =
      Sha256::Hash(std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(msg.data()), 3));
  EXPECT_EQ(DigestToHex(digest),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  const std::string msg = "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  const auto digest = Sha256::Hash(
      std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(msg.data()), msg.size()));
  EXPECT_EQ(DigestToHex(digest),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  std::vector<uint8_t> chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.Update(std::span<const uint8_t>(chunk.data(), chunk.size()));
  }
  EXPECT_EQ(DigestToHex(h.Finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalEqualsOneShot) {
  Xoshiro256 rng(5);
  std::vector<uint8_t> data(5000);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.Next());
  }
  const auto oneshot = Sha256::Hash(std::span<const uint8_t>(data.data(), data.size()));
  // Feed in awkward chunk sizes crossing block boundaries.
  Sha256 h;
  size_t pos = 0;
  size_t step = 1;
  while (pos < data.size()) {
    const size_t n = std::min(step, data.size() - pos);
    h.Update(std::span<const uint8_t>(data.data() + pos, n));
    pos += n;
    step = (step * 3 + 1) % 130 + 1;
  }
  EXPECT_EQ(DigestToHex(h.Finalize()), DigestToHex(oneshot));
}

TEST(HmacSha256Test, Rfc4231Case1) {
  const auto key = std::vector<uint8_t>(20, 0x0b);
  const std::string msg = "Hi There";
  const auto mac = HmacSha256(
      std::span<const uint8_t>(key.data(), key.size()),
      std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(msg.data()), msg.size()));
  EXPECT_EQ(DigestToHex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256Test, Rfc4231Case2) {
  const std::string key = "Jefe";
  const std::string msg = "what do ya want for nothing?";
  const auto mac = HmacSha256(
      std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(key.data()), key.size()),
      std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(msg.data()), msg.size()));
  EXPECT_EQ(DigestToHex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256Test, Rfc4231Case3LongKeyData) {
  const auto key = std::vector<uint8_t>(20, 0xaa);
  const auto msg = std::vector<uint8_t>(50, 0xdd);
  const auto mac = HmacSha256(std::span<const uint8_t>(key.data(), key.size()),
                              std::span<const uint8_t>(msg.data(), msg.size()));
  EXPECT_EQ(DigestToHex(mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256Test, KeyLongerThanBlockIsHashed) {
  // RFC 4231 case 6: 131-byte key.
  const auto key = std::vector<uint8_t>(131, 0xaa);
  const std::string msg = "Test Using Larger Than Block-Size Key - Hash Key First";
  const auto mac = HmacSha256(
      std::span<const uint8_t>(key.data(), key.size()),
      std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(msg.data()), msg.size()));
  EXPECT_EQ(DigestToHex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(DigestEqualTest, EqualAndUnequal) {
  Sha256Digest a{};
  Sha256Digest b{};
  EXPECT_TRUE(DigestEqual(a, b));
  b[31] = 1;
  EXPECT_FALSE(DigestEqual(a, b));
  b[31] = 0;
  b[0] = 0x80;
  EXPECT_FALSE(DigestEqual(a, b));
}

TEST(DigestToHexTest, Formats) {
  Sha256Digest d{};
  d[0] = 0x01;
  d[1] = 0xff;
  const std::string hex = DigestToHex(d);
  EXPECT_EQ(hex.substr(0, 4), "01ff");
  EXPECT_EQ(hex.size(), 64u);
}

TEST(DeriveTaggedTest, DeterministicAndSeparatedByLabelCounterAndKey) {
  const std::vector<uint8_t> key(16, 0x42);
  const std::vector<uint8_t> other_key(16, 0x43);
  const auto k = std::span<const uint8_t>(key.data(), key.size());
  const auto k2 = std::span<const uint8_t>(other_key.data(), other_key.size());

  // Same inputs, same output — derivation is a pure function of (key, label, counter).
  EXPECT_TRUE(DigestEqual(DeriveTagged(k, "seal", 7), DeriveTagged(k, "seal", 7)));
  // Any input change separates the derived material (what keeps CTR keystreams disjoint).
  EXPECT_FALSE(DigestEqual(DeriveTagged(k, "seal", 7), DeriveTagged(k, "seal", 8)));
  EXPECT_FALSE(DigestEqual(DeriveTagged(k, "seal", 7), DeriveTagged(k, "egress", 7)));
  EXPECT_FALSE(DigestEqual(DeriveTagged(k, "seal", 7), DeriveTagged(k2, "seal", 7)));
  // And it is exactly HMAC(key, label || counter_le): interoperable with any RFC 2104 HMAC.
  std::vector<uint8_t> message{'s', 'e', 'a', 'l', 7, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_TRUE(DigestEqual(
      DeriveTagged(k, "seal", 7),
      HmacSha256(k, std::span<const uint8_t>(message.data(), message.size()))));
}

}  // namespace
}  // namespace sbt
