// Sliding-window support: window math, Segment replication, and an end-to-end sliding WinSum
// whose per-window sums match a reference and whose audit stream verifies.

#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "src/common/time.h"
#include "src/control/benchmarks.h"
#include "src/control/harness.h"
#include "src/primitives/primitives.h"
#include "src/tz/secure_world.h"
#include "src/uarray/allocator.h"
#include "tests/testing/testing.h"

namespace sbt {
namespace {

TEST(SlidingWindowFnTest, FixedDegenerateCase) {
  SlidingWindowFn fn{1000, 1000};
  ASSERT_TRUE(fn.Valid());
  EXPECT_EQ(fn.FirstWindow(0), 0u);
  EXPECT_EQ(fn.LastWindow(0), 0u);
  EXPECT_EQ(fn.FirstWindow(999), 0u);
  EXPECT_EQ(fn.LastWindow(999), 0u);
  EXPECT_EQ(fn.FirstWindow(1000), 1u);
  EXPECT_EQ(fn.LastWindow(1000), 1u);
}

TEST(SlidingWindowFnTest, OverlappingMembership) {
  // size 1000, slide 250: each event belongs to 4 windows (except near the epoch).
  SlidingWindowFn fn{1000, 250};
  ASSERT_TRUE(fn.Valid());
  // t=1100: windows w with w*250 <= 1100 < w*250+1000  ->  w in {1, 2, 3, 4}.
  EXPECT_EQ(fn.FirstWindow(1100), 1u);
  EXPECT_EQ(fn.LastWindow(1100), 4u);
  // Every covered window actually contains the time; neighbors do not.
  for (uint32_t w = fn.FirstWindow(1100); w <= fn.LastWindow(1100); ++w) {
    EXPECT_TRUE(fn.WindowAt(w).Contains(1100)) << w;
  }
  EXPECT_FALSE(fn.WindowAt(0).Contains(1100));
  EXPECT_FALSE(fn.WindowAt(5).Contains(1100));
  // Near the epoch, membership clamps at window 0.
  EXPECT_EQ(fn.FirstWindow(100), 0u);
  EXPECT_EQ(fn.LastWindow(100), 0u);
  EXPECT_EQ(fn.FirstWindow(300), 0u);
  EXPECT_EQ(fn.LastWindow(300), 1u);
}

TEST(SlidingWindowFnTest, InvalidSpecs) {
  EXPECT_FALSE((SlidingWindowFn{1000, 0}).Valid());
  EXPECT_FALSE((SlidingWindowFn{250, 1000}).Valid());  // slide > size unsupported
}

TEST(SlidingSegmentTest, ReplicatesEventsIntoOverlappingWindows) {
  SecureWorld world(testing::SmallTzPartition(8));
  UArrayAllocator alloc(&world);
  PrimitiveContext ctx;
  ctx.alloc = &alloc;

  std::vector<Event> events = {
      {.ts_ms = 100, .key = 1, .value = 1},   // windows 0 (only; clamped)
      {.ts_ms = 600, .key = 2, .value = 2},   // windows 0, 1
      {.ts_ms = 1100, .key = 3, .value = 3},  // windows 1, 2
  };
  auto arr = alloc.Create(sizeof(Event), UArrayScope::kStreaming);
  ASSERT_TRUE(arr.ok());
  ASSERT_TRUE((*arr)->Append(events.data(), events.size() * sizeof(Event)).ok());
  (*arr)->Produce();

  auto result = PrimSegment(ctx, **arr, SlidingWindowFn{1000, 500});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 3u);
  EXPECT_EQ((*result)[0].window_index, 0u);
  EXPECT_EQ((*result)[0].events->size(), 2u);  // keys 1, 2
  EXPECT_EQ((*result)[1].window_index, 1u);
  EXPECT_EQ((*result)[1].events->size(), 2u);  // keys 2, 3
  EXPECT_EQ((*result)[2].window_index, 2u);
  EXPECT_EQ((*result)[2].events->size(), 1u);  // key 3
}

TEST(SlidingEndToEndTest, SlidingWinSumMatchesReferenceAndVerifies) {
  HarnessOptions opts;
  opts.version = EngineVersion::kSbtClearIngress;
  opts.engine.secure_pool_mb = 128;
  opts.engine.knobs.worker_threads = 2;
  opts.generator.batch_events = 10000;
  opts.generator.num_windows = 3;
  opts.generator.workload.kind = WorkloadKind::kIntelLab;
  opts.generator.workload.events_per_window = 20000;
  opts.generator.workload.window_ms = 1000;

  Pipeline pipeline = MakeWinSum(1000);
  pipeline.SlideEvery(500);  // 1s windows every 500ms
  const HarnessResult result = RunHarness(pipeline, opts);

  EXPECT_EQ(result.runner().task_errors, 0u);
  ASSERT_TRUE(result.verify.correct)
      << (result.verify.violations.empty() ? "" : result.verify.violations[0]);

  // Reference: regenerate and sum into overlapping windows.
  GeneratorConfig copy = opts.generator;
  copy.encrypt = false;
  Generator gen(copy);
  std::map<uint32_t, int64_t> expected;
  const SlidingWindowFn fn{1000, 500};
  while (auto frame = gen.NextFrame()) {
    if (frame->is_watermark) {
      continue;
    }
    for (size_t i = 0; i < frame->bytes.size(); i += sizeof(Event)) {
      Event e;
      std::memcpy(&e, frame->bytes.data() + i, sizeof(e));
      for (uint32_t w = fn.FirstWindow(e.ts_ms); w <= fn.LastWindow(e.ts_ms); ++w) {
        expected[w] += e.value;
      }
    }
  }
  // Only windows whose end <= final watermark (3000ms) close: w*500+1000 <= 3000 -> w <= 4.
  const DataPlaneConfig cfg = MakeEngineConfig(opts.version, opts.engine);
  size_t closed = 0;
  for (const WindowResult& wr : result.window_results) {
    ASSERT_LE(wr.window_index, 4u);
    const auto plain = DecryptEgressBlob(cfg, wr.blobs[0], wr.blobs[0].ctr_offset);
    int64_t sum = 0;
    std::memcpy(&sum, plain.data(), sizeof(sum));
    EXPECT_EQ(sum, expected[wr.window_index]) << "window " << wr.window_index;
    ++closed;
  }
  EXPECT_EQ(closed, 5u);  // windows 0..4
}

}  // namespace
}  // namespace sbt
