// Edge-case coverage for src/common/time.h window math: behavior at the event-time
// epoch, at the 32-bit event-time ceiling, and rejection of slide > size specs.

#include <gtest/gtest.h>

#include "src/common/time.h"

namespace sbt {
namespace {

// --- Window ---------------------------------------------------------------------
// (Baseline Contains/SpanMs behavior is covered by common_test's WindowTest;
// only edge cases live here.)

TEST(WindowEdgeTest, EmptyWindowContainsNothing) {
  const Window w{500, 500};
  EXPECT_FALSE(w.Contains(500));
  EXPECT_EQ(w.SpanMs(), 0u);
}

// --- FixedWindowFn ----------------------------------------------------------------

TEST(FixedWindowEdgeTest, EpochBoundary) {
  const FixedWindowFn fn{1000};
  EXPECT_EQ(fn.WindowIndex(kEventTimeMin), 0u);
  EXPECT_EQ(fn.WindowIndex(999), 0u);
  EXPECT_EQ(fn.WindowIndex(1000), 1u);
  EXPECT_TRUE(fn.WindowAt(0).Contains(0));
}

TEST(FixedWindowEdgeTest, IndexAndWindowAgreeAcrossBoundaries) {
  const FixedWindowFn fn{250};
  for (EventTimeMs t : {0u, 1u, 249u, 250u, 251u, 124999u, 125000u}) {
    EXPECT_TRUE(fn.WindowAt(fn.WindowIndex(t)).Contains(t)) << t;
  }
}

TEST(FixedWindowEdgeTest, MaxEventTime) {
  const FixedWindowFn fn{1000};
  // ~49.7 days of milliseconds: the last representable event time still maps to a
  // valid window index without overflow in the division.
  EXPECT_EQ(fn.WindowIndex(kEventTimeMax), kEventTimeMax / 1000);
  // The ceiling window's exclusive end passes 2^32; it must still contain its own
  // events (regression pin for the 64-bit end computation in WindowAt), and the
  // phantom window one index past the ceiling must contain nothing (its 64-bit
  // begin lies beyond every representable event time).
  const uint32_t ceiling = fn.WindowIndex(kEventTimeMax);
  EXPECT_TRUE(fn.WindowAt(ceiling).Contains(kEventTimeMax));
  EXPECT_FALSE(fn.WindowAt(ceiling + 1).Contains(kEventTimeMax));
  EXPECT_FALSE(fn.WindowAt(ceiling + 1).Contains(0));
}

// --- SlidingWindowFn --------------------------------------------------------------

TEST(SlidingWindowEdgeTest, RejectsSlideGreaterThanSize) {
  EXPECT_FALSE((SlidingWindowFn{250, 1000}).Valid());
  EXPECT_FALSE((SlidingWindowFn{999, 1000}).Valid());
  EXPECT_TRUE((SlidingWindowFn{1000, 1000}).Valid());
  EXPECT_TRUE((SlidingWindowFn{1000, 999}).Valid());
}

TEST(SlidingWindowEdgeTest, RejectsZeroSlide) {
  EXPECT_FALSE((SlidingWindowFn{1000, 0}).Valid());
  EXPECT_FALSE((SlidingWindowFn{0, 0}).Valid());
}

TEST(SlidingWindowEdgeTest, EpochBoundaryClampsAtWindowZero) {
  const SlidingWindowFn fn{1000, 250};
  // Times earlier than one full window length belong to fewer than size/slide
  // windows; FirstWindow must clamp at 0, not wrap negative.
  EXPECT_EQ(fn.FirstWindow(0), 0u);
  EXPECT_EQ(fn.LastWindow(0), 0u);
  EXPECT_EQ(fn.FirstWindow(999), 0u);
  EXPECT_EQ(fn.LastWindow(999), 3u);
  // First time covered by the full complement of windows.
  EXPECT_EQ(fn.FirstWindow(1000), 1u);
  EXPECT_EQ(fn.LastWindow(1000), 4u);
}

TEST(SlidingWindowEdgeTest, ExactBoundaryMembership) {
  const SlidingWindowFn fn{1000, 250};
  // t on a slide boundary: enters the new window, leaves the oldest.
  for (EventTimeMs t : {250u, 500u, 750u, 1000u, 1250u, 2000u}) {
    const uint32_t first = fn.FirstWindow(t);
    const uint32_t last = fn.LastWindow(t);
    ASSERT_LE(first, last) << t;
    for (uint32_t w = first; w <= last; ++w) {
      EXPECT_TRUE(fn.WindowAt(w).Contains(t)) << "t=" << t << " w=" << w;
    }
    if (first > 0) {
      EXPECT_FALSE(fn.WindowAt(first - 1).Contains(t)) << t;
    }
    EXPECT_FALSE(fn.WindowAt(last + 1).Contains(t)) << t;
  }
}

TEST(SlidingWindowEdgeTest, MaxEventTimeDoesNotOverflow) {
  const SlidingWindowFn fn{1000, 250};
  // FirstWindow computes (t - size) / slide + 1 in 64-bit; at the 32-bit ceiling
  // this must not wrap. LastWindow is a plain division.
  const EventTimeMs t = kEventTimeMax;
  const uint32_t first = fn.FirstWindow(t);
  const uint32_t last = fn.LastWindow(t);
  EXPECT_EQ(last, t / 250);
  EXPECT_EQ(first, static_cast<uint32_t>((static_cast<uint64_t>(t) - 1000) / 250 + 1));
  EXPECT_LE(first, last);
  EXPECT_TRUE(fn.WindowAt(last).Contains(t));
  // Windows past the ceiling start beyond every representable time.
  EXPECT_FALSE(fn.WindowAt(last + 1).Contains(t));
}

TEST(SlidingWindowEdgeTest, DegenerateSlideEqualsSizeMatchesFixed) {
  const SlidingWindowFn sliding{1000, 1000};
  const FixedWindowFn fixed{1000};
  for (EventTimeMs t : {0u, 1u, 999u, 1000u, 123456u}) {
    EXPECT_EQ(sliding.FirstWindow(t), fixed.WindowIndex(t)) << t;
    EXPECT_EQ(sliding.LastWindow(t), fixed.WindowIndex(t)) << t;
  }
}

}  // namespace
}  // namespace sbt
