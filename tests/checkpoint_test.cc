// Sealed engine checkpoint/restore (src/core/checkpoint.h, DataPlane::Checkpoint/Restore,
// Runner::CheckpointState/RestoreState, CheckpointEngine/RestoreEngine).
//
// The acceptance scenarios: seal -> corrupt one byte -> restore is rejected with kDataLoss;
// seal -> restore -> continue produces byte-identical egress and a verifier-accepted continued
// audit chain versus an uninterrupted run of the same schedule.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/attest/audit_chain.h"
#include "src/attest/compress.h"
#include "src/attest/verifier.h"
#include "src/control/benchmarks.h"
#include "src/control/engine.h"
#include "src/core/data_plane.h"
#include "tests/testing/testing.h"

namespace sbt {
namespace {

constexpr uint32_t kWindows = 4;
constexpr size_t kEventsPerWindow = 5000;

DataPlaneConfig EngineConfig(size_t pool_mb = 8) {
  DataPlaneConfig cfg = testing::SmallDataPlaneConfig(/*decrypt_ingress=*/false);
  cfg.partition = testing::SmallTzPartition(pool_mb);
  return cfg;
}

RunnerConfig SingleWorker(bool fuse_chains = true) {
  RunnerConfig rc;
  // Any worker count now yields identical audit streams and egress (ticket sequencing);
  // one worker just keeps these small fixtures cheap. stress_test covers the multi-worker
  // checkpoint/restore equivalence.
  rc.worker_threads = 1;
  rc.fuse_chains = fuse_chains;
  return rc;
}

// One frame of events inside window `w`, deterministic per window.
std::vector<Event> WindowFrame(uint32_t w) {
  return testing::MakeEvents(kEventsPerWindow, /*keys=*/64, /*window_ms=*/1000,
                             /*seed=*/100 + w);
}

void IngestWindow(Runner& runner, uint32_t w) {
  std::vector<Event> events = WindowFrame(w);
  for (Event& e : events) {
    e.ts_ms = w * 1000 + e.ts_ms % 1000;  // pin every event inside window w
  }
  ASSERT_TRUE(runner.IngestFrame(testing::AsBytes(events)).ok());
  runner.Drain();  // deterministic id allocation across runs
}

// Ingests all four windows, then closes windows 0 and 1. Leaves windows 2 and 3 open with
// live contributions — the state a checkpoint must carry.
void RunPrefix(Runner& runner) {
  for (uint32_t w = 0; w < kWindows; ++w) {
    IngestWindow(runner, w);
  }
  ASSERT_TRUE(runner.AdvanceWatermark(1000).ok());
  runner.Drain();
  ASSERT_TRUE(runner.AdvanceWatermark(2000).ok());
  runner.Drain();
}

void RunSuffix(Runner& runner) {
  ASSERT_TRUE(runner.AdvanceWatermark(3000).ok());
  runner.Drain();
  ASSERT_TRUE(runner.AdvanceWatermark(4000).ok());
  runner.Drain();
}

std::vector<WindowResult> SortedByWindow(std::vector<WindowResult> results) {
  std::sort(results.begin(), results.end(),
            [](const WindowResult& a, const WindowResult& b) {
              return a.window_index < b.window_index;
            });
  return results;
}

void ExpectSameEgress(const std::vector<WindowResult>& a, const std::vector<WindowResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].window_index, b[i].window_index);
    ASSERT_EQ(a[i].blobs.size(), b[i].blobs.size()) << "window " << a[i].window_index;
    for (size_t j = 0; j < a[i].blobs.size(); ++j) {
      const EgressBlob& x = a[i].blobs[j];
      const EgressBlob& y = b[i].blobs[j];
      EXPECT_EQ(x.ciphertext, y.ciphertext) << "window " << a[i].window_index;
      EXPECT_TRUE(DigestEqual(x.mac, y.mac)) << "window " << a[i].window_index;
      EXPECT_EQ(x.elems, y.elems);
      EXPECT_EQ(x.ctr_offset, y.ctr_offset);
    }
  }
}

std::vector<AuditRecord> WithoutTimestamps(std::vector<AuditRecord> records) {
  for (AuditRecord& r : records) {
    r.ts_ms = 0;
  }
  return records;
}

TEST(CheckpointTest, RestoredEngineContinuesByteIdentically) {
  const DataPlaneConfig cfg = EngineConfig();
  const Pipeline pipeline = MakeDistinct(1000);

  // Reference: one uninterrupted run.
  DataPlane ref_dp(cfg);
  std::vector<WindowResult> ref_results;
  std::vector<AuditRecord> ref_records;
  {
    Runner runner(&ref_dp, pipeline, SingleWorker());
    RunPrefix(runner);
    RunSuffix(runner);
    ref_results = SortedByWindow(runner.TakeResults());
  }
  const AuditUpload ref_upload = ref_dp.FlushAudit(&ref_records);
  ASSERT_EQ(ref_results.size(), kWindows);

  // Interrupted run: prefix, seal, restore into a fresh engine, suffix.
  DataPlane dp1(cfg);
  auto runner1 = std::make_unique<Runner>(&dp1, pipeline, SingleWorker());
  RunPrefix(*runner1);
  std::vector<WindowResult> results;
  auto bundle = CheckpointEngine(dp1, *runner1, {}, &results);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  runner1.reset();  // the crashed/decommissioned incarnation
  ASSERT_EQ(results.size(), 2u) << "windows 0 and 1 were already closed and egressed";

  // The seal-time upload covers every record up to the seal, and the sealed header's chain
  // position follows it directly.
  EXPECT_GT(bundle->audit.record_count, 0u);
  EXPECT_EQ(bundle->sealed.chain_seq, bundle->audit.chain_seq + 1);
  EXPECT_TRUE(DigestEqual(bundle->sealed.chain_head, bundle->audit.mac));

  DataPlane dp2(cfg);
  Runner runner2(&dp2, pipeline, SingleWorker());
  auto annex = RestoreEngine(dp2, runner2, bundle->sealed);
  ASSERT_TRUE(annex.ok()) << annex.status().ToString();
  EXPECT_TRUE(annex->empty());
  RunSuffix(runner2);
  {
    std::vector<WindowResult> tail = runner2.TakeResults();
    results.insert(results.end(), tail.begin(), tail.end());
  }
  results = SortedByWindow(std::move(results));

  // Byte-identical egress: ciphertext, MACs, keystream offsets, element counts all match the
  // uninterrupted run — for the windows closed before the seal AND the ones closed after.
  ExpectSameEgress(ref_results, results);
  EXPECT_EQ(runner2.stats().windows_emitted, kWindows);
  EXPECT_EQ(runner2.stats().events_ingested, uint64_t{kWindows} * kEventsPerWindow);

  // The decoded chain is record-identical to the uninterrupted session (timestamps aside:
  // the restored incarnation has its own epoch).
  std::vector<AuditRecord> records;
  const AuditUpload final_upload = dp2.FlushAudit(&records);
  auto first = DecodeAuditBatch(bundle->audit.compressed);
  ASSERT_TRUE(first.ok());
  std::vector<AuditRecord> chained = *first;
  chained.insert(chained.end(), records.begin(), records.end());
  EXPECT_EQ(WithoutTimestamps(chained), WithoutTimestamps(ref_records));

  // The chain verifies as a continuation: upload, resume at the sealed position, next upload.
  AuditChainVerifier chain(cfg.mac_key);
  ASSERT_TRUE(chain.Accept(bundle->audit).ok());
  ASSERT_TRUE(chain.AcceptResume(bundle->sealed.chain_seq, bundle->sealed.chain_head).ok());
  ASSERT_TRUE(chain.Accept(final_upload).ok());

  // A stale checkpoint replayed after newer uploads is rejected (fork detection).
  EXPECT_EQ(chain.AcceptResume(bundle->sealed.chain_seq, bundle->sealed.chain_head).code(),
            StatusCode::kDataLoss);

  // And the replayed records satisfy the cloud verifier as ONE complete session.
  const CloudVerifier verifier(pipeline.ToVerifierSpec());
  const VerifyReport report = verifier.Verify(chained, /*session_complete=*/true);
  EXPECT_TRUE(report.correct) << (report.violations.empty() ? "" : report.violations[0]);
  EXPECT_EQ(report.windows_verified, kWindows);

  // The uninterrupted run's single-upload chain verifies too, from a fresh verifier.
  AuditChainVerifier ref_chain(cfg.mac_key);
  EXPECT_TRUE(ref_chain.Accept(ref_upload).ok());
}

TEST(CheckpointTest, CheckpointDuringFusedRunContinuesAcrossBoundaryModes) {
  // The default runner is fused (command-buffer submission); the reference above already
  // proves fused-interrupted == fused-uninterrupted. This one crosses the modes: an engine
  // checkpointed under the UNFUSED boundary restores into a FUSED runner and continues
  // byte-identically against a fused uninterrupted run. Fusion changes how chains cross the
  // boundary, not the sealed state or the dataflow — so incarnations can mix modes freely.
  const DataPlaneConfig cfg = EngineConfig();
  const Pipeline pipeline = MakeDistinct(1000);

  DataPlane ref_dp(cfg);
  std::vector<WindowResult> ref_results;
  std::vector<AuditRecord> ref_records;
  {
    Runner runner(&ref_dp, pipeline, SingleWorker(/*fuse_chains=*/true));
    RunPrefix(runner);
    RunSuffix(runner);
    ref_results = SortedByWindow(runner.TakeResults());
  }
  ref_dp.FlushAudit(&ref_records);

  DataPlane dp1(cfg);
  auto runner1 = std::make_unique<Runner>(&dp1, pipeline, SingleWorker(/*fuse_chains=*/false));
  RunPrefix(*runner1);
  std::vector<WindowResult> results;
  auto bundle = CheckpointEngine(dp1, *runner1, {}, &results);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  runner1.reset();

  DataPlane dp2(cfg);
  Runner runner2(&dp2, pipeline, SingleWorker(/*fuse_chains=*/true));
  ASSERT_TRUE(RestoreEngine(dp2, runner2, bundle->sealed).ok());
  RunSuffix(runner2);
  {
    std::vector<WindowResult> tail = runner2.TakeResults();
    results.insert(results.end(), tail.begin(), tail.end());
  }
  ExpectSameEgress(ref_results, SortedByWindow(std::move(results)));

  std::vector<AuditRecord> records;
  dp2.FlushAudit(&records);
  auto first = DecodeAuditBatch(bundle->audit.compressed);
  ASSERT_TRUE(first.ok());
  std::vector<AuditRecord> chained = *first;
  chained.insert(chained.end(), records.begin(), records.end());
  EXPECT_EQ(WithoutTimestamps(chained), WithoutTimestamps(ref_records));

  const CloudVerifier verifier(pipeline.ToVerifierSpec());
  const VerifyReport report = verifier.Verify(chained, /*session_complete=*/true);
  EXPECT_TRUE(report.correct) << (report.violations.empty() ? "" : report.violations[0]);
}

TEST(CheckpointTest, EverySingleByteCorruptionIsRejected) {
  const DataPlaneConfig cfg = EngineConfig();
  const Pipeline pipeline = MakeDistinct(1000);
  DataPlane dp(cfg);
  Runner runner(&dp, pipeline, SingleWorker());
  RunPrefix(runner);
  auto bundle = CheckpointEngine(dp, runner, {}, nullptr);
  ASSERT_TRUE(bundle.ok());
  const SealedCheckpoint& sealed = bundle->sealed;
  ASSERT_FALSE(sealed.ciphertext.empty());

  auto expect_rejected = [&](const SealedCheckpoint& corrupt, const char* what) {
    DataPlane fresh(cfg);
    auto restored = fresh.Restore(corrupt);
    ASSERT_FALSE(restored.ok()) << what;
    EXPECT_EQ(restored.status().code(), StatusCode::kDataLoss) << what;
  };

  // One flipped bit anywhere in the ciphertext.
  for (const size_t offset : {size_t{0}, sealed.ciphertext.size() / 2,
                              sealed.ciphertext.size() - 1}) {
    SealedCheckpoint corrupt = sealed;
    corrupt.ciphertext[offset] ^= 0x01;
    expect_rejected(corrupt, "ciphertext bit flip");
  }
  // Header fields: chain position, claimed head, version.
  {
    SealedCheckpoint corrupt = sealed;
    corrupt.chain_seq += 1;
    expect_rejected(corrupt, "chain_seq tamper");
  }
  {
    SealedCheckpoint corrupt = sealed;
    corrupt.chain_head[0] ^= 0x80;
    expect_rejected(corrupt, "chain_head tamper");
  }
  {
    SealedCheckpoint corrupt = sealed;
    corrupt.mac[31] ^= 0x40;
    expect_rejected(corrupt, "mac tamper");
  }
  // Truncation.
  {
    SealedCheckpoint corrupt = sealed;
    corrupt.ciphertext.resize(corrupt.ciphertext.size() / 2);
    expect_rejected(corrupt, "truncation");
  }

  // The pristine seal still restores after all that.
  DataPlane fresh(cfg);
  Runner fresh_runner(&fresh, pipeline, SingleWorker());
  EXPECT_TRUE(RestoreEngine(fresh, fresh_runner, sealed).ok());
}

TEST(CheckpointTest, RestorePreconditionsAndQuota) {
  const DataPlaneConfig cfg = EngineConfig();
  const Pipeline pipeline = MakeDistinct(1000);
  DataPlane dp(cfg);
  Runner runner(&dp, pipeline, SingleWorker());
  RunPrefix(runner);
  auto bundle = CheckpointEngine(dp, runner, {}, nullptr);
  ASSERT_TRUE(bundle.ok());

  // Restore into a data plane that already processed data is refused.
  {
    DataPlane used(cfg);
    const auto events = testing::MakeEvents(100);
    ASSERT_TRUE(
        used.IngestBatch(testing::AsBytes(events), sizeof(Event), 0, IngestPath::kTrustedIo)
            .ok());
    EXPECT_EQ(used.Restore(bundle->sealed).status().code(), StatusCode::kFailedPrecondition);
  }
  // A partition too small for the checkpointed state fails with the backpressure code, not a
  // crash: bounded secure memory holds on the restore path too.
  {
    DataPlaneConfig tiny = cfg;
    tiny.partition.secure_dram_bytes = 64u << 10;  // one 64KB page
    tiny.partition.group_reserve_bytes = 64u << 10;
    DataPlane small(tiny);
    EXPECT_EQ(small.Restore(bundle->sealed).status().code(), StatusCode::kResourceExhausted);
  }
  // Restoring under the wrong tenant keys is indistinguishable from corruption.
  {
    DataPlaneConfig wrong = cfg;
    wrong.mac_key[0] ^= 0xff;
    DataPlane other(wrong);
    EXPECT_EQ(other.Restore(bundle->sealed).status().code(), StatusCode::kDataLoss);
  }
}

TEST(CheckpointTest, CheckpointStateRequiresQuiescedRunner) {
  const DataPlaneConfig cfg = EngineConfig();
  DataPlane dp(cfg);
  Runner runner(&dp, MakeDistinct(1000), SingleWorker());
  IngestWindow(runner, 0);
  runner.Drain();
  // Drained: checkpointable.
  EXPECT_TRUE(runner.CheckpointState().ok());
  // A restored-state call on a runner that already worked is refused.
  auto state = runner.CheckpointState();
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(runner.RestoreState(*state).code(), StatusCode::kFailedPrecondition);
  // Malformed runner state is rejected cleanly by a fresh runner.
  DataPlane dp2(cfg);
  Runner fresh(&dp2, MakeDistinct(1000), SingleWorker());
  std::vector<uint8_t> garbage = *state;
  garbage.resize(garbage.size() / 2);
  EXPECT_EQ(fresh.RestoreState(garbage).code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace sbt
