// Sealed engine checkpoint/restore through the one lifecycle surface (src/control/lifecycle.h,
// DataPlane::Checkpoint/Restore/ApplyDelta).
//
// The acceptance scenarios: seal -> corrupt one byte -> restore is rejected with kDataLoss;
// seal -> restore -> continue produces byte-identical egress and a verifier-accepted continued
// audit chain versus an uninterrupted run of the same schedule; and the delta-seal chain —
// full seal followed by incremental deltas — restores byte-identically to a full-only seal at
// the same point while rejecting corrupted, reordered, or replayed mid-chain deltas.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "src/attest/audit_chain.h"
#include "src/attest/compress.h"
#include "src/attest/verifier.h"
#include "src/control/benchmarks.h"
#include "src/control/engine.h"
#include "src/control/lifecycle.h"
#include "src/core/data_plane.h"
#include "src/obs/metrics.h"
#include "tests/testing/testing.h"

namespace sbt {
namespace {

constexpr uint32_t kWindows = 4;
constexpr size_t kEventsPerWindow = 5000;

DataPlaneConfig EngineConfig(size_t pool_mb = 8) {
  DataPlaneConfig cfg = testing::SmallDataPlaneConfig(/*decrypt_ingress=*/false);
  cfg.partition = testing::SmallTzPartition(pool_mb);
  return cfg;
}

RunnerConfig SingleWorker(bool fuse_chains = true) {
  RunnerConfig rc;
  // Any worker count now yields identical audit streams and egress (ticket sequencing);
  // one worker just keeps these small fixtures cheap. The delta-chain test below and
  // stress_test cover the multi-worker checkpoint/restore equivalence.
  rc.knobs.worker_threads = 1;
  rc.knobs.fuse_chains = fuse_chains;
  return rc;
}

// One frame of events inside window `w`, deterministic per window.
std::vector<Event> WindowFrame(uint32_t w) {
  return testing::MakeEvents(kEventsPerWindow, /*keys=*/64, /*window_ms=*/1000,
                             /*seed=*/100 + w);
}

void IngestWindow(Runner& runner, uint32_t w) {
  std::vector<Event> events = WindowFrame(w);
  for (Event& e : events) {
    e.ts_ms = w * 1000 + e.ts_ms % 1000;  // pin every event inside window w
  }
  ASSERT_TRUE(runner.IngestFrame(testing::AsBytes(events)).ok());
  runner.Drain();  // deterministic id allocation across runs
}

void Watermark(Runner& runner, EventTimeMs value) {
  ASSERT_TRUE(runner.AdvanceWatermark(value).ok());
  runner.Drain();
}

// Ingests all four windows, then closes windows 0 and 1. Leaves windows 2 and 3 open with
// live contributions — the state a checkpoint must carry.
void RunPrefix(Runner& runner) {
  for (uint32_t w = 0; w < kWindows; ++w) {
    IngestWindow(runner, w);
  }
  Watermark(runner, 1000);
  Watermark(runner, 2000);
}

void RunSuffix(Runner& runner) {
  Watermark(runner, 3000);
  Watermark(runner, 4000);
}

std::vector<WindowResult> SortedByWindow(std::vector<WindowResult> results) {
  std::sort(results.begin(), results.end(),
            [](const WindowResult& a, const WindowResult& b) {
              return a.window_index < b.window_index;
            });
  return results;
}

void ExpectSameEgress(const std::vector<WindowResult>& a, const std::vector<WindowResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].window_index, b[i].window_index);
    ASSERT_EQ(a[i].blobs.size(), b[i].blobs.size()) << "window " << a[i].window_index;
    for (size_t j = 0; j < a[i].blobs.size(); ++j) {
      const EgressBlob& x = a[i].blobs[j];
      const EgressBlob& y = b[i].blobs[j];
      EXPECT_EQ(x.ciphertext, y.ciphertext) << "window " << a[i].window_index;
      EXPECT_TRUE(DigestEqual(x.mac, y.mac)) << "window " << a[i].window_index;
      EXPECT_EQ(x.elems, y.elems);
      EXPECT_EQ(x.ctr_offset, y.ctr_offset);
    }
  }
}

std::vector<AuditRecord> WithoutTimestamps(std::vector<AuditRecord> records) {
  for (AuditRecord& r : records) {
    r.ts_ms = 0;
  }
  return records;
}

TEST(CheckpointTest, RestoredEngineContinuesByteIdentically) {
  const DataPlaneConfig cfg = EngineConfig();
  const Pipeline pipeline = MakeDistinct(1000);

  // Reference: one uninterrupted run.
  DataPlane ref_dp(cfg);
  std::vector<WindowResult> ref_results;
  std::vector<AuditRecord> ref_records;
  {
    Runner runner(&ref_dp, pipeline, SingleWorker());
    RunPrefix(runner);
    RunSuffix(runner);
    ref_results = SortedByWindow(runner.TakeResults());
  }
  const AuditUpload ref_upload = ref_dp.FlushAudit(&ref_records);
  ASSERT_EQ(ref_results.size(), kWindows);

  // Interrupted run: prefix, seal, restore into a fresh engine, suffix.
  DataPlane dp1(cfg);
  auto runner1 = std::make_unique<Runner>(&dp1, pipeline, SingleWorker());
  RunPrefix(*runner1);
  std::vector<WindowResult> results;
  auto bundle = EngineLifecycle(&dp1, runner1.get()).Checkpoint({}, &results);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  runner1.reset();  // the crashed/decommissioned incarnation
  ASSERT_EQ(results.size(), 2u) << "windows 0 and 1 were already closed and egressed";

  // The seal-time upload covers every record up to the seal, and the sealed header's chain
  // position follows it directly.
  EXPECT_GT(bundle->audit.record_count, 0u);
  EXPECT_EQ(bundle->sealed.identity.chain_seq, bundle->audit.chain_seq + 1);
  EXPECT_TRUE(DigestEqual(bundle->sealed.identity.chain_head, bundle->audit.mac));

  DataPlane dp2(cfg);
  Runner runner2(&dp2, pipeline, SingleWorker());
  auto annex = EngineLifecycle(&dp2, &runner2).Restore(bundle->sealed);
  ASSERT_TRUE(annex.ok()) << annex.status().ToString();
  EXPECT_TRUE(annex->empty());
  RunSuffix(runner2);
  {
    std::vector<WindowResult> tail = runner2.TakeResults();
    results.insert(results.end(), tail.begin(), tail.end());
  }
  results = SortedByWindow(std::move(results));

  // Byte-identical egress: ciphertext, MACs, keystream offsets, element counts all match the
  // uninterrupted run — for the windows closed before the seal AND the ones closed after.
  ExpectSameEgress(ref_results, results);
  EXPECT_EQ(runner2.stats().windows_emitted, kWindows);
  EXPECT_EQ(runner2.stats().events_ingested, uint64_t{kWindows} * kEventsPerWindow);

  // The decoded chain is record-identical to the uninterrupted session (timestamps aside:
  // the restored incarnation has its own epoch).
  std::vector<AuditRecord> records;
  const AuditUpload final_upload = dp2.FlushAudit(&records);
  auto first = DecodeAuditBatch(bundle->audit.compressed);
  ASSERT_TRUE(first.ok());
  std::vector<AuditRecord> chained = *first;
  chained.insert(chained.end(), records.begin(), records.end());
  EXPECT_EQ(WithoutTimestamps(chained), WithoutTimestamps(ref_records));

  // The chain verifies as a continuation: upload, resume at the sealed position, next upload.
  AuditChainVerifier chain(cfg.mac_key);
  ASSERT_TRUE(chain.Accept(bundle->audit).ok());
  ASSERT_TRUE(
      chain.AcceptResume(bundle->sealed.identity.chain_seq, bundle->sealed.identity.chain_head)
          .ok());
  ASSERT_TRUE(chain.Accept(final_upload).ok());

  // A stale checkpoint replayed after newer uploads is rejected (fork detection).
  EXPECT_EQ(
      chain.AcceptResume(bundle->sealed.identity.chain_seq, bundle->sealed.identity.chain_head)
          .code(),
      StatusCode::kDataLoss);

  // And the replayed records satisfy the cloud verifier as ONE complete session.
  const CloudVerifier verifier(pipeline.ToVerifierSpec());
  const VerifyReport report = verifier.Verify(chained, /*session_complete=*/true);
  EXPECT_TRUE(report.correct) << (report.violations.empty() ? "" : report.violations[0]);
  EXPECT_EQ(report.windows_verified, kWindows);

  // The uninterrupted run's single-upload chain verifies too, from a fresh verifier.
  AuditChainVerifier ref_chain(cfg.mac_key);
  EXPECT_TRUE(ref_chain.Accept(ref_upload).ok());
}

TEST(CheckpointTest, CheckpointDuringFusedRunContinuesAcrossBoundaryModes) {
  // The default runner is fused (command-buffer submission); the reference above already
  // proves fused-interrupted == fused-uninterrupted. This one crosses the modes: an engine
  // checkpointed under the UNFUSED boundary restores into a FUSED runner and continues
  // byte-identically against a fused uninterrupted run. Fusion changes how chains cross the
  // boundary, not the sealed state or the dataflow — so incarnations can mix modes freely.
  const DataPlaneConfig cfg = EngineConfig();
  const Pipeline pipeline = MakeDistinct(1000);

  DataPlane ref_dp(cfg);
  std::vector<WindowResult> ref_results;
  std::vector<AuditRecord> ref_records;
  {
    Runner runner(&ref_dp, pipeline, SingleWorker(/*fuse_chains=*/true));
    RunPrefix(runner);
    RunSuffix(runner);
    ref_results = SortedByWindow(runner.TakeResults());
  }
  ref_dp.FlushAudit(&ref_records);

  DataPlane dp1(cfg);
  auto runner1 = std::make_unique<Runner>(&dp1, pipeline, SingleWorker(/*fuse_chains=*/false));
  RunPrefix(*runner1);
  std::vector<WindowResult> results;
  auto bundle = EngineLifecycle(&dp1, runner1.get()).Checkpoint({}, &results);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  runner1.reset();

  DataPlane dp2(cfg);
  Runner runner2(&dp2, pipeline, SingleWorker(/*fuse_chains=*/true));
  ASSERT_TRUE(EngineLifecycle(&dp2, &runner2).Restore(bundle->sealed).ok());
  RunSuffix(runner2);
  {
    std::vector<WindowResult> tail = runner2.TakeResults();
    results.insert(results.end(), tail.begin(), tail.end());
  }
  ExpectSameEgress(ref_results, SortedByWindow(std::move(results)));

  std::vector<AuditRecord> records;
  dp2.FlushAudit(&records);
  auto first = DecodeAuditBatch(bundle->audit.compressed);
  ASSERT_TRUE(first.ok());
  std::vector<AuditRecord> chained = *first;
  chained.insert(chained.end(), records.begin(), records.end());
  EXPECT_EQ(WithoutTimestamps(chained), WithoutTimestamps(ref_records));

  const CloudVerifier verifier(pipeline.ToVerifierSpec());
  const VerifyReport report = verifier.Verify(chained, /*session_complete=*/true);
  EXPECT_TRUE(report.correct) << (report.violations.empty() ? "" : report.violations[0]);
}

TEST(CheckpointTest, EverySingleByteCorruptionIsRejected) {
  const DataPlaneConfig cfg = EngineConfig();
  const Pipeline pipeline = MakeDistinct(1000);
  DataPlane dp(cfg);
  Runner runner(&dp, pipeline, SingleWorker());
  RunPrefix(runner);
  auto bundle = EngineLifecycle(&dp, &runner).Checkpoint({}, nullptr);
  ASSERT_TRUE(bundle.ok());
  const SealedCheckpoint& sealed = bundle->sealed;
  ASSERT_FALSE(sealed.ciphertext.empty());

  auto expect_rejected = [&](const SealedCheckpoint& corrupt, const char* what) {
    DataPlane fresh(cfg);
    auto restored = fresh.Restore(corrupt);
    ASSERT_FALSE(restored.ok()) << what;
    EXPECT_EQ(restored.status().code(), StatusCode::kDataLoss) << what;
  };

  // One flipped bit anywhere in the ciphertext.
  for (const size_t offset : {size_t{0}, sealed.ciphertext.size() / 2,
                              sealed.ciphertext.size() - 1}) {
    SealedCheckpoint corrupt = sealed;
    corrupt.ciphertext[offset] ^= 0x01;
    expect_rejected(corrupt, "ciphertext bit flip");
  }
  // Header fields: identity (tenant / engine / chain position), claimed head, salt.
  {
    SealedCheckpoint corrupt = sealed;
    corrupt.identity.chain_seq += 1;
    expect_rejected(corrupt, "chain_seq tamper");
  }
  {
    SealedCheckpoint corrupt = sealed;
    corrupt.identity.chain_head[0] ^= 0x80;
    expect_rejected(corrupt, "chain_head tamper");
  }
  {
    SealedCheckpoint corrupt = sealed;
    corrupt.identity.tenant += 1;
    expect_rejected(corrupt, "tenant tamper");
  }
  {
    SealedCheckpoint corrupt = sealed;
    corrupt.identity.engine_id += 1;
    expect_rejected(corrupt, "engine_id tamper");
  }
  {
    SealedCheckpoint corrupt = sealed;
    corrupt.seal_salt ^= 1;
    expect_rejected(corrupt, "seal_salt tamper");
  }
  {
    SealedCheckpoint corrupt = sealed;
    corrupt.mac[31] ^= 0x40;
    expect_rejected(corrupt, "mac tamper");
  }
  // Truncation.
  {
    SealedCheckpoint corrupt = sealed;
    corrupt.ciphertext.resize(corrupt.ciphertext.size() / 2);
    expect_rejected(corrupt, "truncation");
  }

  // The pristine seal still restores after all that.
  DataPlane fresh(cfg);
  Runner fresh_runner(&fresh, pipeline, SingleWorker());
  EXPECT_TRUE(EngineLifecycle(&fresh, &fresh_runner).Restore(sealed).ok());
}

TEST(CheckpointTest, RestorePreconditionsAndQuota) {
  const DataPlaneConfig cfg = EngineConfig();
  const Pipeline pipeline = MakeDistinct(1000);
  DataPlane dp(cfg);
  Runner runner(&dp, pipeline, SingleWorker());
  RunPrefix(runner);
  auto bundle = EngineLifecycle(&dp, &runner).Checkpoint({}, nullptr);
  ASSERT_TRUE(bundle.ok());

  // Restore into a data plane that already processed data is refused.
  {
    DataPlane used(cfg);
    const auto events = testing::MakeEvents(100);
    ASSERT_TRUE(
        used.IngestBatch(testing::AsBytes(events), sizeof(Event), 0, IngestPath::kTrustedIo)
            .ok());
    EXPECT_EQ(used.Restore(bundle->sealed).status().code(), StatusCode::kFailedPrecondition);
  }
  // The lifecycle surface enforces the same precondition end to end: restoring into a pair
  // whose engine already worked is refused, not silently merged.
  {
    DataPlane used_dp(cfg);
    Runner used_runner(&used_dp, pipeline, SingleWorker());
    IngestWindow(used_runner, 0);
    EXPECT_EQ(EngineLifecycle(&used_dp, &used_runner).Restore(bundle->sealed).status().code(),
              StatusCode::kFailedPrecondition);
  }
  // A partition too small for the checkpointed state fails with the backpressure code, not a
  // crash: bounded secure memory holds on the restore path too.
  {
    DataPlaneConfig tiny = cfg;
    tiny.partition.secure_dram_bytes = 64u << 10;  // one 64KB page
    tiny.partition.group_reserve_bytes = 64u << 10;
    DataPlane small(tiny);
    EXPECT_EQ(small.Restore(bundle->sealed).status().code(), StatusCode::kResourceExhausted);
  }
  // Restoring under the wrong tenant keys is indistinguishable from corruption.
  {
    DataPlaneConfig wrong = cfg;
    wrong.mac_key[0] ^= 0xff;
    DataPlane other(wrong);
    EXPECT_EQ(other.Restore(bundle->sealed).status().code(), StatusCode::kDataLoss);
  }
  // A malformed control annex is rejected cleanly by a fresh pair's adopt path.
  {
    DataPlane dp2(cfg);
    auto engine_annex = dp2.Restore(bundle->sealed);
    ASSERT_TRUE(engine_annex.ok());
    std::vector<uint8_t> garbage = *engine_annex;
    garbage.resize(garbage.size() / 2);
    Runner fresh(&dp2, pipeline, SingleWorker());
    EXPECT_EQ(EngineLifecycle(&dp2, &fresh).AdoptState(garbage).status().code(),
              StatusCode::kDataLoss);
  }
}

TEST(CheckpointTest, RefusalNamesTheGuardThatTripped) {
  // A refused checkpoint must say WHICH admission guard tripped — in the Status message and
  // in the reason-labeled refusal counter — so delta-cadence tuning can tell "work still
  // executing" from "not quiesced".
  const DataPlaneConfig cfg = EngineConfig();
  DataPlane dp(cfg);
  obs::Counter* refusals =
      obs::MetricsRegistry::Global().GetCounter("sbt_checkpoint_refusals_total");
  obs::Counter* open_ticket = obs::MetricsRegistry::Global().GetCounter(
      "sbt_checkpoint_refusals_total", {{"reason", "open_ticket"}});
  const uint64_t total_before = refusals->Value();
  const uint64_t ticket_before = open_ticket->Value();

  ExecTicket ticket = dp.OpenTicket(/*reserve_ids=*/0);
  auto refused = dp.Checkpoint();
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(refused.status().message().find("open_ticket"), std::string::npos)
      << refused.status().ToString();
  EXPECT_EQ(refusals->Value(), total_before + 1);
  EXPECT_EQ(open_ticket->Value(), ticket_before + 1);

  // Retire the ticket: the guard clears and the same plane seals.
  dp.RetireTicket(ticket);
  EXPECT_TRUE(dp.Checkpoint().ok());
}

TEST(CheckpointTest, DeltaBeforeAnyFullSealFallsBackToFull) {
  const DataPlaneConfig cfg = EngineConfig();
  const Pipeline pipeline = MakeDistinct(1000);
  DataPlane dp(cfg);
  Runner runner(&dp, pipeline, SingleWorker());
  IngestWindow(runner, 0);
  auto bundle = EngineLifecycle(&dp, &runner).Checkpoint({.mode = SealMode::kDelta}, nullptr);
  ASSERT_TRUE(bundle.ok());
  // No base to cut a delta against: the seal is a (restorable) full seal and says so.
  EXPECT_EQ(bundle->sealed.mode, SealMode::kFull);
  DataPlane fresh(cfg);
  Runner fresh_runner(&fresh, pipeline, SingleWorker());
  EXPECT_TRUE(EngineLifecycle(&fresh, &fresh_runner).Restore(bundle->sealed).ok());
}

// Runs the full + delta + delta seal chain under the given knobs and proves the standby that
// replayed the chain continues byte-identically to (a) a standby restored from a single full
// seal cut at the same point and (b) an uninterrupted run — across worker counts and both
// boundary modes, since delta state capture must be schedule-independent.
void RunDeltaChainScenario(int worker_threads, bool fuse_chains) {
  SCOPED_TRACE(::testing::Message() << "workers=" << worker_threads
                                    << " fused=" << fuse_chains);
  const DataPlaneConfig cfg = EngineConfig();
  const Pipeline pipeline = MakeDistinct(1000);
  RunnerConfig rc;
  rc.knobs.worker_threads = worker_threads;
  rc.knobs.fuse_chains = fuse_chains;

  // Reference: same ingest/watermark schedule, no seals.
  DataPlane ref_dp(cfg);
  std::vector<WindowResult> ref_results;
  {
    Runner runner(&ref_dp, pipeline, rc);
    IngestWindow(runner, 0);
    IngestWindow(runner, 1);
    IngestWindow(runner, 2);
    Watermark(runner, 1000);
    IngestWindow(runner, 3);
    Watermark(runner, 2000);
    RunSuffix(runner);
    ref_results = SortedByWindow(runner.TakeResults());
  }
  ASSERT_EQ(ref_results.size(), kWindows);

  // Primary: seal chain full -> delta -> delta while the engine keeps running, plus one full
  // seal at the final position for the full-only comparison standby.
  DataPlane dp(cfg);
  Runner runner(&dp, pipeline, rc);
  EngineLifecycle lifecycle(&dp, &runner);
  std::vector<WindowResult> shipped;

  IngestWindow(runner, 0);
  IngestWindow(runner, 1);
  auto b0 = lifecycle.Checkpoint({.mode = SealMode::kFull}, &shipped);
  ASSERT_TRUE(b0.ok()) << b0.status().ToString();
  ASSERT_EQ(b0->sealed.mode, SealMode::kFull);

  IngestWindow(runner, 2);
  Watermark(runner, 1000);
  auto b1 = lifecycle.Checkpoint({.mode = SealMode::kDelta}, &shipped);
  ASSERT_TRUE(b1.ok()) << b1.status().ToString();
  ASSERT_EQ(b1->sealed.mode, SealMode::kDelta);
  // The delta names its base: exactly the predecessor seal's chain position.
  EXPECT_EQ(b1->sealed.base_chain_seq, b0->sealed.identity.chain_seq);
  EXPECT_TRUE(DigestEqual(b1->sealed.base_chain_head, b0->sealed.identity.chain_head));

  IngestWindow(runner, 3);
  Watermark(runner, 2000);
  auto b2 = lifecycle.Checkpoint({.mode = SealMode::kDelta}, &shipped);
  ASSERT_TRUE(b2.ok()) << b2.status().ToString();
  ASSERT_EQ(b2->sealed.mode, SealMode::kDelta);
  EXPECT_EQ(b2->sealed.base_chain_seq, b1->sealed.identity.chain_seq);
  auto bf = lifecycle.Checkpoint({.mode = SealMode::kFull}, &shipped);
  ASSERT_TRUE(bf.ok()) << bf.status().ToString();
  ASSERT_EQ(bf->sealed.mode, SealMode::kFull);

  ASSERT_EQ(shipped.size(), 2u) << "windows 0 and 1 closed before the last seal";

  // Standby A: replay the chain — full restore, then each delta in order — and adopt the
  // latest control annex into a fresh runner (the promote-path splice).
  DataPlane dp_a(cfg);
  ASSERT_TRUE(dp_a.Restore(b0->sealed).ok());
  ASSERT_TRUE(dp_a.ApplyDelta(b1->sealed).ok());
  auto annex = dp_a.ApplyDelta(b2->sealed);
  ASSERT_TRUE(annex.ok()) << annex.status().ToString();
  Runner runner_a(&dp_a, pipeline, rc);
  ASSERT_TRUE(EngineLifecycle(&dp_a, &runner_a).AdoptState(*annex).ok());
  RunSuffix(runner_a);
  std::vector<WindowResult> tail_a = runner_a.TakeResults();

  // Standby B: one full seal cut at the same point.
  DataPlane dp_b(cfg);
  Runner runner_b(&dp_b, pipeline, rc);
  ASSERT_TRUE(EngineLifecycle(&dp_b, &runner_b).Restore(bf->sealed).ok());
  RunSuffix(runner_b);
  std::vector<WindowResult> tail_b = runner_b.TakeResults();

  // full+delta == full-only == uninterrupted, byte for byte.
  ExpectSameEgress(SortedByWindow(tail_a), SortedByWindow(tail_b));
  std::vector<WindowResult> combined = shipped;
  combined.insert(combined.end(), tail_a.begin(), tail_a.end());
  ExpectSameEgress(ref_results, SortedByWindow(std::move(combined)));

  // The audit chain across the whole sealed history verifies gap-free: every seal-time
  // upload, resume at the last delta's position, then the standby's own continuation.
  AuditChainVerifier chain(cfg.mac_key);
  ASSERT_TRUE(chain.Accept(b0->audit).ok());
  ASSERT_TRUE(chain.Accept(b1->audit).ok());
  ASSERT_TRUE(chain.Accept(b2->audit).ok());
  ASSERT_TRUE(
      chain.AcceptResume(b2->sealed.identity.chain_seq, b2->sealed.identity.chain_head).ok());
  const AuditUpload standby_upload = dp_a.FlushAudit();
  ASSERT_TRUE(chain.Accept(standby_upload).ok());
}

TEST(CheckpointTest, DeltaChainRestoresByteIdenticallyAcrossWorkersAndModes) {
  RunDeltaChainScenario(/*worker_threads=*/1, /*fuse_chains=*/true);
  RunDeltaChainScenario(/*worker_threads=*/4, /*fuse_chains=*/true);
  RunDeltaChainScenario(/*worker_threads=*/4, /*fuse_chains=*/false);
}

TEST(CheckpointTest, DeltaChainRejectsReorderReplayAndCorruption) {
  const DataPlaneConfig cfg = EngineConfig();
  const Pipeline pipeline = MakeDistinct(1000);
  DataPlane dp(cfg);
  Runner runner(&dp, pipeline, SingleWorker());
  EngineLifecycle lifecycle(&dp, &runner);

  IngestWindow(runner, 0);
  IngestWindow(runner, 1);
  auto b0 = lifecycle.Checkpoint({.mode = SealMode::kFull}, nullptr);
  ASSERT_TRUE(b0.ok());
  IngestWindow(runner, 2);
  Watermark(runner, 1000);
  auto b1 = lifecycle.Checkpoint({.mode = SealMode::kDelta}, nullptr);
  ASSERT_TRUE(b1.ok());
  IngestWindow(runner, 3);
  Watermark(runner, 2000);
  auto b2 = lifecycle.Checkpoint({.mode = SealMode::kDelta}, nullptr);
  ASSERT_TRUE(b2.ok());

  // Reordered: skipping a link of the chain is detected by the base-position check.
  {
    DataPlane replica(cfg);
    ASSERT_TRUE(replica.Restore(b0->sealed).ok());
    EXPECT_EQ(replica.ApplyDelta(b2->sealed).status().code(), StatusCode::kDataLoss);
  }
  // Replayed: a delta applies exactly once; the second apply's base no longer matches.
  {
    DataPlane replica(cfg);
    ASSERT_TRUE(replica.Restore(b0->sealed).ok());
    ASSERT_TRUE(replica.ApplyDelta(b1->sealed).ok());
    EXPECT_EQ(replica.ApplyDelta(b1->sealed).status().code(), StatusCode::kDataLoss);
  }
  // Corrupted mid-chain: the MAC rejects it, the replica's base state stays intact, and the
  // retransmitted authentic delta (and its successor) still applies.
  {
    DataPlane replica(cfg);
    ASSERT_TRUE(replica.Restore(b0->sealed).ok());
    SealedCheckpoint corrupt = b1->sealed;
    corrupt.ciphertext[corrupt.ciphertext.size() / 2] ^= 0x01;
    EXPECT_EQ(replica.ApplyDelta(corrupt).status().code(), StatusCode::kDataLoss);
    ASSERT_TRUE(replica.ApplyDelta(b1->sealed).ok());
    ASSERT_TRUE(replica.ApplyDelta(b2->sealed).ok());
  }
  // Forked base claim: rewriting the base pointer cannot graft a delta onto the wrong link.
  {
    DataPlane replica(cfg);
    ASSERT_TRUE(replica.Restore(b0->sealed).ok());
    ASSERT_TRUE(replica.ApplyDelta(b1->sealed).ok());
    SealedCheckpoint forged = b2->sealed;
    forged.base_chain_seq = b0->sealed.identity.chain_seq;
    forged.base_chain_head = b0->sealed.identity.chain_head;
    EXPECT_EQ(replica.ApplyDelta(forged).status().code(), StatusCode::kDataLoss);
  }
  // Mode confusion is refused before any crypto: a full seal is not a delta and vice versa,
  // and a delta cannot seed a fresh plane.
  {
    DataPlane replica(cfg);
    ASSERT_TRUE(replica.Restore(b0->sealed).ok());
    EXPECT_EQ(replica.ApplyDelta(b0->sealed).status().code(), StatusCode::kFailedPrecondition);
  }
  {
    DataPlane fresh(cfg);
    EXPECT_EQ(fresh.Restore(b1->sealed).status().code(), StatusCode::kFailedPrecondition);
    EXPECT_EQ(fresh.ApplyDelta(b1->sealed).status().code(), StatusCode::kFailedPrecondition);
  }
}

}  // namespace
}  // namespace sbt
